#include "similarity/clustering.h"

#include <algorithm>
#include <limits>
#include <map>
#include <numeric>

namespace wpred {
namespace {

Status ValidateDistances(const Matrix& distances) {
  if (distances.rows() != distances.cols() || distances.rows() == 0) {
    return Status::InvalidArgument("distance matrix must be square");
  }
  return Status::OK();
}

double LinkageDistance(const Matrix& distances, const std::vector<size_t>& a,
                       const std::vector<size_t>& b, Linkage linkage) {
  double best = linkage == Linkage::kSingle
                    ? std::numeric_limits<double>::infinity()
                    : 0.0;
  double total = 0.0;
  for (size_t i : a) {
    for (size_t j : b) {
      const double d = distances(i, j);
      switch (linkage) {
        case Linkage::kSingle:
          best = std::min(best, d);
          break;
        case Linkage::kComplete:
          best = std::max(best, d);
          break;
        case Linkage::kAverage:
          total += d;
          break;
      }
    }
  }
  if (linkage == Linkage::kAverage) {
    return total / static_cast<double>(a.size() * b.size());
  }
  return best;
}

}  // namespace

Result<Clustering> AgglomerativeCluster(const Matrix& distances,
                                        int num_clusters, Linkage linkage) {
  WPRED_RETURN_IF_ERROR(ValidateDistances(distances));
  const size_t n = distances.rows();
  if (num_clusters < 1 || static_cast<size_t>(num_clusters) > n) {
    return Status::InvalidArgument("num_clusters out of range");
  }

  std::vector<std::vector<size_t>> clusters(n);
  for (size_t i = 0; i < n; ++i) clusters[i] = {i};

  while (clusters.size() > static_cast<size_t>(num_clusters)) {
    double best = std::numeric_limits<double>::infinity();
    size_t merge_a = 0, merge_b = 1;
    for (size_t a = 0; a < clusters.size(); ++a) {
      for (size_t b = a + 1; b < clusters.size(); ++b) {
        const double d =
            LinkageDistance(distances, clusters[a], clusters[b], linkage);
        if (d < best) {
          best = d;
          merge_a = a;
          merge_b = b;
        }
      }
    }
    clusters[merge_a].insert(clusters[merge_a].end(),
                             clusters[merge_b].begin(),
                             clusters[merge_b].end());
    clusters.erase(clusters.begin() + static_cast<long>(merge_b));
  }

  Clustering out;
  out.assignments.assign(n, -1);
  out.num_clusters = static_cast<int>(clusters.size());
  for (size_t c = 0; c < clusters.size(); ++c) {
    for (size_t i : clusters[c]) out.assignments[i] = static_cast<int>(c);
  }
  return out;
}

Result<double> ClusterPurity(const Clustering& clustering,
                             const std::vector<int>& labels) {
  if (clustering.assignments.size() != labels.size() || labels.empty()) {
    return Status::InvalidArgument("label count mismatch");
  }
  std::map<int, std::map<int, size_t>> counts;  // cluster -> label -> n
  for (size_t i = 0; i < labels.size(); ++i) {
    ++counts[clustering.assignments[i]][labels[i]];
  }
  size_t correct = 0;
  for (const auto& [cluster, by_label] : counts) {
    size_t majority = 0;
    for (const auto& [label, n] : by_label) majority = std::max(majority, n);
    correct += majority;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

Result<double> AdjustedRandIndex(const Clustering& clustering,
                                 const std::vector<int>& labels) {
  if (clustering.assignments.size() != labels.size() || labels.size() < 2) {
    return Status::InvalidArgument("need >= 2 labelled items");
  }
  auto choose2 = [](double n) { return n * (n - 1.0) / 2.0; };

  std::map<std::pair<int, int>, size_t> contingency;
  std::map<int, size_t> row_sums, col_sums;
  for (size_t i = 0; i < labels.size(); ++i) {
    ++contingency[{clustering.assignments[i], labels[i]}];
    ++row_sums[clustering.assignments[i]];
    ++col_sums[labels[i]];
  }
  double index = 0.0;
  for (const auto& [key, n] : contingency) index += choose2(n);
  double rows = 0.0, cols = 0.0;
  for (const auto& [cluster, n] : row_sums) rows += choose2(n);
  for (const auto& [label, n] : col_sums) cols += choose2(n);
  const double total = choose2(static_cast<double>(labels.size()));
  const double expected = rows * cols / total;
  const double max_index = 0.5 * (rows + cols);
  if (max_index == expected) return 1.0;  // degenerate: single cluster+label
  return (index - expected) / (max_index - expected);
}

}  // namespace wpred
