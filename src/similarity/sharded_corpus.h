#ifndef WPRED_SIMILARITY_SHARDED_CORPUS_H_
#define WPRED_SIMILARITY_SHARDED_CORPUS_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

// Sharded reference corpus (DESIGN.md §12).
//
// A reference corpus of 10^5–10^6 representation traces cannot be treated
// as one flat array by the parallel similarity stages: work distribution
// wants units much smaller than "the whole corpus" and much larger than
// "one trace", and the envelope cache wants each unit's data contiguous so
// a worker streams one cache-friendly block instead of striding the heap.
//
// ShardedCorpus fixes the unit: traces stay in one vector in corpus order
// (global indices are unchanged — every Neighbor::index, top-k result, and
// envelope lookup is identical to the unsharded layout), and the corpus is
// overlaid with contiguous fixed-width shards of `shard_traces` traces
// (the last shard may be short). The similarity engine parallelises over
// shards — the granularity ParallelFor's stealing schedule balances — and
// the envelope cache stores one contiguous envelope block per shard.

namespace wpred {

/// One contiguous shard: trace indices [begin, end) of the corpus.
struct CorpusShard {
  size_t begin = 0;
  size_t end = 0;  // exclusive

  size_t size() const { return end - begin; }
};

/// A corpus of representation matrices plus its shard overlay. Grows only
/// by appending at the tail (Append); existing traces and their global
/// indices never move. The shard map is pure arithmetic over (size,
/// shard_traces), so sharding never changes what is computed — only how it
/// is laid out and scheduled — and an appended corpus has exactly the shard
/// map a from-scratch construction of the full trace list would have.
class ShardedCorpus {
 public:
  /// Default shard width. Sized so a shard's representations plus their
  /// envelope block stay within a typical L2 while one shard is still
  /// thousands of DTW lattice rows of work — coarse enough to amortise a
  /// steal, fine enough to rebalance an irregular cascade.
  static constexpr size_t kDefaultShardTraces = 64;

  ShardedCorpus() = default;

  /// Takes ownership of `traces`. `shard_traces == 0` selects
  /// kDefaultShardTraces; any positive width is honoured as-is (clamped to
  /// at least 1).
  explicit ShardedCorpus(std::vector<Matrix> traces, size_t shard_traces = 0);

  /// Appends traces at the tail. Existing global indices are untouched; the
  /// last (possibly short) shard fills up before new shards appear, exactly
  /// as if the full trace list had been sharded from scratch. Not
  /// thread-safe against concurrent reads — single-writer, like every
  /// mutation in the streaming layer (DESIGN.md §13).
  void Append(std::vector<Matrix> traces);

  size_t size() const { return traces_.size(); }
  bool empty() const { return traces_.empty(); }
  const Matrix& operator[](size_t index) const { return traces_[index]; }
  const std::vector<Matrix>& traces() const { return traces_; }

  /// Column-major mirror of trace `index`: cols blocks of rows contiguous
  /// doubles (column f starts at offset f·rows). The SIMD similarity
  /// kernels stream per-feature columns of many candidates; the row-major
  /// Matrix layout would cost either a strided walk or a Vector copy per
  /// (candidate, feature) pair, so the corpus carries a column-major copy,
  /// laid out shard-contiguously (one allocation per shard, traces of a
  /// shard back to back) and maintained through Append. A bitwise copy —
  /// no arithmetic — so both layouts always hold identical values.
  const double* col_data(size_t index) const {
    const ColBlock& block = col_blocks_[index / shard_traces_];
    return block.data.data() + block.offsets[index % shard_traces_];
  }

  /// Shard width in traces (>= 1, even for an empty corpus).
  size_t shard_traces() const { return shard_traces_; }
  /// ceil(size / shard_traces); 0 for an empty corpus.
  size_t num_shards() const;
  /// The s-th shard's [begin, end) range. Requires s < num_shards().
  CorpusShard shard(size_t s) const;
  /// The shard holding trace `index`. Requires index < size().
  size_t shard_of(size_t index) const { return index / shard_traces_; }

 private:
  /// Shard-contiguous column-major storage: one flat allocation per shard,
  /// `offsets[t]` the start of local trace t's cols·rows block.
  struct ColBlock {
    std::vector<double> data;
    std::vector<size_t> offsets;
  };

  /// (Re)builds the column-major blocks for shards [first_shard, end);
  /// called from the constructor (all shards) and Append (the possibly
  /// part-filled tail shard plus any new ones).
  void RebuildColBlocksFrom(size_t first_shard);

  std::vector<Matrix> traces_;
  size_t shard_traces_ = kDefaultShardTraces;
  std::vector<ColBlock> col_blocks_;
};

}  // namespace wpred

#endif  // WPRED_SIMILARITY_SHARDED_CORPUS_H_
