#include "similarity/query.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <atomic>
#include <limits>
#include <mutex>
#include <numeric>
#include <utility>

#include "common/parallel.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "similarity/dtw.h"
#include "similarity/measures.h"

namespace wpred {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Ascending (distance, index) order: the tie-break every ranking surface in
// wpred pins, so equal-distance neighbours resolve to the smaller corpus
// index on every platform.
bool NeighborLess(const Neighbor& a, const Neighbor& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.index < b.index;
}

double RowSquaredDistance(const Matrix& a, size_t ra, const Matrix& b,
                          size_t rb) {
  double acc = 0.0;
  for (size_t f = 0; f < a.cols(); ++f) {
    const double d = a(ra, f) - b(rb, f);
    acc += d * d;
  }
  return acc;
}

}  // namespace

namespace query_internal {

SeriesEnvelope BuildEnvelope(const Matrix& series, int window) {
  const size_t rows = series.rows();
  const size_t cols = series.cols();
  const size_t band = window > 0 ? static_cast<size_t>(window) : rows;
  SeriesEnvelope envelope{Matrix(rows, cols), Matrix(rows, cols)};
  // Lemire-style streaming min/max: each index enters and leaves each
  // monotonic deque once, so the envelope costs O(rows) per column
  // regardless of the band width.
  std::deque<size_t> max_q;
  std::deque<size_t> min_q;
  for (size_t f = 0; f < cols; ++f) {
    max_q.clear();
    min_q.clear();
    size_t next = 0;  // first row not yet offered to the deques
    for (size_t i = 0; i < rows; ++i) {
      const size_t hi = std::min(rows - 1, i + band);
      while (next <= hi) {
        const double v = series(next, f);
        while (!max_q.empty() && series(max_q.back(), f) <= v) {
          max_q.pop_back();
        }
        max_q.push_back(next);
        while (!min_q.empty() && series(min_q.back(), f) >= v) {
          min_q.pop_back();
        }
        min_q.push_back(next);
        ++next;
      }
      const size_t lo = i > band ? i - band : 0;
      while (max_q.front() < lo) max_q.pop_front();
      while (min_q.front() < lo) min_q.pop_front();
      envelope.upper(i, f) = series(max_q.front(), f);
      envelope.lower(i, f) = series(min_q.front(), f);
    }
  }
  return envelope;
}

double LbKimDependent(const Matrix& query, const Matrix& candidate) {
  WPRED_DCHECK_EQ(query.cols(), candidate.cols());
  WPRED_DCHECK(query.rows() > 0 && candidate.rows() > 0);
  double acc = RowSquaredDistance(query, 0, candidate, 0);
  if (query.rows() + candidate.rows() > 2) {
    acc += RowSquaredDistance(query, query.rows() - 1, candidate,
                              candidate.rows() - 1);
  }
  return std::sqrt(acc);
}

double LbKimIndependent(const Matrix& query, const Matrix& candidate) {
  WPRED_DCHECK_EQ(query.cols(), candidate.cols());
  WPRED_DCHECK(query.rows() > 0 && candidate.rows() > 0);
  const bool distinct_endpoints = query.rows() + candidate.rows() > 2;
  double total = 0.0;
  for (size_t f = 0; f < query.cols(); ++f) {
    const double first = query(0, f) - candidate(0, f);
    double acc = first * first;
    if (distinct_endpoints) {
      const double last = query(query.rows() - 1, f) -
                          candidate(candidate.rows() - 1, f);
      acc += last * last;
    }
    total += std::sqrt(acc);
  }
  return total / static_cast<double>(query.cols());
}

double LbKeoghDependent(const Matrix& query, const SeriesEnvelope& envelope) {
  WPRED_DCHECK_EQ(query.rows(), envelope.upper.rows());
  WPRED_DCHECK_EQ(query.cols(), envelope.upper.cols());
  double acc = 0.0;
  for (size_t i = 0; i < query.rows(); ++i) {
    for (size_t f = 0; f < query.cols(); ++f) {
      const double v = query(i, f);
      const double hi = envelope.upper(i, f);
      const double lo = envelope.lower(i, f);
      if (v > hi) {
        const double d = v - hi;
        acc += d * d;
      } else if (v < lo) {
        const double d = lo - v;
        acc += d * d;
      }
    }
  }
  return std::sqrt(acc);
}

double LbKeoghIndependent(const Matrix& query, const SeriesEnvelope& envelope) {
  WPRED_DCHECK_EQ(query.rows(), envelope.upper.rows());
  WPRED_DCHECK_EQ(query.cols(), envelope.upper.cols());
  double total = 0.0;
  for (size_t f = 0; f < query.cols(); ++f) {
    double acc = 0.0;
    for (size_t i = 0; i < query.rows(); ++i) {
      const double v = query(i, f);
      const double hi = envelope.upper(i, f);
      const double lo = envelope.lower(i, f);
      if (v > hi) {
        const double d = v - hi;
        acc += d * d;
      } else if (v < lo) {
        const double d = lo - v;
        acc += d * d;
      }
    }
    total += std::sqrt(acc);
  }
  return total / static_cast<double>(query.cols());
}

}  // namespace query_internal

EnvelopeCache::~EnvelopeCache() {
  Node* node = head_.load(std::memory_order_acquire);
  while (node != nullptr) {
    Node* next = node->next;
    delete node;
    node = next;
  }
}

EnvelopeCache::EnvelopeCache(EnvelopeCache&& other) noexcept
    : head_(other.head_.exchange(nullptr, std::memory_order_acq_rel)) {}

EnvelopeCache& EnvelopeCache::operator=(EnvelopeCache&& other) noexcept {
  if (this == &other) return *this;
  Node* mine = head_.exchange(
      other.head_.exchange(nullptr, std::memory_order_acq_rel),
      std::memory_order_acq_rel);
  while (mine != nullptr) {
    Node* next = mine->next;
    delete mine;
    mine = next;
  }
  return *this;
}

const EnvelopeCache::Node* EnvelopeCache::Find(int window) const {
  // Acquire on the head pairs with the release publish in GetOrBuild, so a
  // reader that sees a node sees its fully-built EnvelopeSet; `next` links
  // are immutable after publication.
  for (const Node* node = head_.load(std::memory_order_acquire);
       node != nullptr; node = node->next) {
    if (node->window == window) return node;
  }
  return nullptr;
}

Result<const EnvelopeSet*> EnvelopeCache::GetOrBuild(
    const ShardedCorpus& corpus, int window, int num_threads) {
  if (const Node* hit = Find(window)) {
    WPRED_COUNT_ADD("similarity.envelope.cache_hits", 1);
    return &hit->set;
  }
  // Cold window: serialise the build, then re-check — a racing caller may
  // have published this window while we waited for the lock.
  MutexLock lock(build_mu_);
  if (const Node* hit = Find(window)) {
    WPRED_COUNT_ADD("similarity.envelope.cache_hits", 1);
    return &hit->set;
  }
  WPRED_COUNT_ADD("similarity.envelope.cache_misses", 1);
  EnvelopeSet set;
  set.shard_traces_ = corpus.shard_traces();
  set.blocks_.resize(corpus.num_shards());
  WPRED_RETURN_IF_ERROR(
      ParallelFor(corpus.num_shards(), num_threads, [&](size_t s) -> Status {
        const CorpusShard shard = corpus.shard(s);
        std::vector<SeriesEnvelope>& block = set.blocks_[s];
        block.resize(shard.size());
        for (size_t i = shard.begin; i < shard.end; ++i) {
          block[i - shard.begin] =
              query_internal::BuildEnvelope(corpus[i], window);
        }
        return Status::OK();
      }));
  WPRED_COUNT_ADD("similarity.envelope.builds",
                  static_cast<uint64_t>(corpus.size()));
  Node* node = new Node;
  node->window = window;
  node->set = std::move(set);
  // wpred-lint: allow(atomics-order): head_ is written only under build_mu_,
  // held here — the relaxed load cannot miss a concurrent publish, and the
  // release store below orders the whole node before readers can reach it.
  node->next = head_.load(std::memory_order_relaxed);
  head_.store(node, std::memory_order_release);
  return &node->set;
}

Status EnvelopeCache::ExtendForAppend(const ShardedCorpus& corpus,
                                      size_t old_size, int num_threads) {
  WPRED_DCHECK_LE(old_size, corpus.size());
  const size_t new_count = corpus.size() - old_size;
  if (new_count == 0) return Status::OK();
  // The build mutex serialises against concurrent GetOrBuild calls; readers
  // must be quiescent (single-writer contract in the header).
  MutexLock lock(build_mu_);
  for (Node* node = head_.load(std::memory_order_acquire); node != nullptr;
       node = node->next) {
    EnvelopeSet& set = node->set;
    WPRED_DCHECK_EQ(set.shard_traces_, corpus.shard_traces());
    // Pre-size the per-shard blocks so the parallel loop below only does
    // slot-indexed writes (determinism discipline of DESIGN.md §7).
    set.blocks_.resize(corpus.num_shards());
    for (size_t s = corpus.shard_of(old_size == 0 ? 0 : old_size - 1);
         s < corpus.num_shards(); ++s) {
      set.blocks_[s].resize(corpus.shard(s).size());
    }
    WPRED_RETURN_IF_ERROR(
        ParallelFor(new_count, num_threads, [&](size_t j) -> Status {
          const size_t i = old_size + j;
          set.blocks_[i / set.shard_traces_][i % set.shard_traces_] =
              query_internal::BuildEnvelope(corpus[i], node->window);
          return Status::OK();
        }));
    WPRED_COUNT_ADD("similarity.envelope.builds",
                    static_cast<uint64_t>(new_count));
    WPRED_COUNT_ADD("similarity.envelope.appended",
                    static_cast<uint64_t>(new_count));
  }
  return Status::OK();
}

const EnvelopeSet* EnvelopeCache::Lookup(int window) const {
  const Node* node = Find(window);
  if (node == nullptr) {
    WPRED_COUNT_ADD("similarity.envelope.cache_misses", 1);
    return nullptr;
  }
  WPRED_COUNT_ADD("similarity.envelope.cache_hits", 1);
  return &node->set;
}

Result<SimilarityQueryEngine> SimilarityQueryEngine::Build(
    std::vector<Matrix> corpus, const std::string& measure, int window,
    int num_threads, size_t shard_traces) {
  if (corpus.empty()) {
    return Status::InvalidArgument("need at least one corpus entry");
  }
  SimilarityQueryEngine engine;
  if (measure == "Dependent-DTW") {
    engine.kind_ = MeasureKind::kDependentDtw;
  } else if (measure == "Independent-DTW") {
    engine.kind_ = MeasureKind::kIndependentDtw;
  } else {
    const std::vector<std::string> norms = NormMeasureNames();
    const std::vector<std::string> mts = MtsOnlyMeasureNames();
    const bool known =
        std::find(norms.begin(), norms.end(), measure) != norms.end() ||
        std::find(mts.begin(), mts.end(), measure) != mts.end();
    if (!known) {
      return Status::NotFound("unknown similarity measure: " + measure);
    }
    engine.kind_ = MeasureKind::kGeneric;
  }
  for (size_t i = 0; i < corpus.size(); ++i) {
    if (corpus[i].empty()) {
      return Status::InvalidArgument(
          StrFormat("corpus entry %zu is an empty matrix", i));
    }
    if (!AllFinite(corpus[i])) {
      return Status::InvalidArgument(
          StrFormat("corpus entry %zu has non-finite values", i));
    }
    if (corpus[i].cols() != corpus[0].cols()) {
      return Status::InvalidArgument(
          StrFormat("corpus entry %zu has %zu features, entry 0 has %zu", i,
                    corpus[i].cols(), corpus[0].cols()));
    }
  }
  engine.measure_ = measure;
  engine.window_ = window;
  engine.corpus_ = ShardedCorpus(std::move(corpus), shard_traces);
  if (engine.kind_ != MeasureKind::kGeneric) {
    WPRED_RETURN_IF_ERROR(
        engine.envelopes_.GetOrBuild(engine.corpus_, window, num_threads)
            .status());
  }
  return engine;
}

Status SimilarityQueryEngine::AppendTraces(std::vector<Matrix> traces,
                                           int num_threads) {
  if (corpus_.empty()) {
    return Status::FailedPrecondition(
        "AppendTraces on an engine that was never Built");
  }
  if (traces.empty()) return Status::OK();
  const size_t old_size = corpus_.size();
  for (size_t j = 0; j < traces.size(); ++j) {
    if (traces[j].empty()) {
      return Status::InvalidArgument(
          StrFormat("appended trace %zu (global index %zu) is an empty "
                    "matrix",
                    j, old_size + j));
    }
    if (!AllFinite(traces[j])) {
      return Status::InvalidArgument(
          StrFormat("appended trace %zu (global index %zu) has non-finite "
                    "values",
                    j, old_size + j));
    }
    if (traces[j].cols() != corpus_[0].cols()) {
      return Status::InvalidArgument(
          StrFormat("appended trace %zu has %zu features, corpus has %zu", j,
                    traces[j].cols(), corpus_[0].cols()));
    }
  }
  corpus_.Append(std::move(traces));
  WPRED_COUNT_ADD("similarity.corpus.appended_traces",
                  static_cast<uint64_t>(corpus_.size() - old_size));
  if (kind_ != MeasureKind::kGeneric) {
    WPRED_RETURN_IF_ERROR(
        envelopes_.ExtendForAppend(corpus_, old_size, num_threads));
  }
  return Status::OK();
}

Result<double> SimilarityQueryEngine::ExactDistance(
    const Matrix& query, const Matrix& candidate) const {
  switch (kind_) {
    case MeasureKind::kDependentDtw:
      return DependentDtwDistance(query, candidate, window_);
    case MeasureKind::kIndependentDtw:
      return IndependentDtwDistance(query, candidate, window_);
    case MeasureKind::kGeneric:
      break;
  }
  return MeasureDistance(measure_, query, candidate);
}

Result<Vector> SimilarityQueryEngine::Distances(const Matrix& query,
                                                int num_threads) const {
  if (query.empty()) return Status::InvalidArgument("empty query");
  if (!AllFinite(query)) {
    return Status::InvalidArgument("non-finite values in query");
  }
  // Shard-granular parallel loop: one task per contiguous shard, each with
  // slot-indexed writes into the global-index output, so results are in
  // corpus order and independent of schedule and thread count.
  Vector out(corpus_.size());
  WPRED_RETURN_IF_ERROR(
      ParallelFor(corpus_.num_shards(), num_threads, [&](size_t s) -> Status {
        const CorpusShard shard = corpus_.shard(s);
        for (size_t i = shard.begin; i < shard.end; ++i) {
          WPRED_ASSIGN_OR_RETURN(out[i], ExactDistance(query, corpus_[i]));
        }
        return Status::OK();
      }));
  return out;
}

Result<std::vector<Neighbor>> SimilarityQueryEngine::RankNeighbors(
    const Matrix& query, size_t k) const {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (query.empty()) return Status::InvalidArgument("empty query");
  if (!AllFinite(query)) {
    return Status::InvalidArgument("non-finite values in query");
  }
  const size_t n = corpus_.size();
  const size_t k_eff = std::min(k, n);

  if (k_eff == n) {
    // Whole-corpus ranking: nothing can be pruned (every candidate is in
    // the result), so take the exact parallel scan plus a stable argsort.
    WPRED_ASSIGN_OR_RETURN(const Vector distances, Distances(query));
    WPRED_COUNT_ADD("similarity.query.candidates", static_cast<uint64_t>(n));
    WPRED_COUNT_ADD("similarity.query.exact", static_cast<uint64_t>(n));
    std::vector<Neighbor> ranked(n);
    for (size_t i = 0; i < n; ++i) ranked[i] = {i, distances[i]};
    std::sort(ranked.begin(), ranked.end(), NeighborLess);
    return ranked;
  }

  const bool dtw = kind_ != MeasureKind::kGeneric;
  const EnvelopeSet* envelopes = nullptr;
  SeriesEnvelope query_envelope;
  if (dtw) {
    if (query.cols() != corpus_[0].cols()) {
      return Status::InvalidArgument("feature count mismatch");
    }
    envelopes = envelopes_.Lookup(window_);
    if (envelopes == nullptr) {
      return Status::FailedPrecondition(
          "envelope cache missing the engine window");  // unreachable: Build
                                                        // prebuilds it
    }
    // LB_Keogh is symmetric in which series provides the envelope; building
    // the query's envelope once per call buys the tighter max of both
    // directions for every equal-length candidate.
    query_envelope = query_internal::BuildEnvelope(query, window_);
  }

  WPRED_COUNT_ADD("similarity.query.candidates", static_cast<uint64_t>(n));
  std::vector<Neighbor> heap;  // max-heap on (distance, index)
  heap.reserve(k_eff);
  const auto consider = [&heap, k_eff](const Neighbor& entry) {
    if (heap.size() < k_eff) {
      heap.push_back(entry);
      std::push_heap(heap.begin(), heap.end(), NeighborLess);
    } else if (NeighborLess(entry, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), NeighborLess);
      heap.back() = entry;
      std::push_heap(heap.begin(), heap.end(), NeighborLess);
    }
  };

  if (!dtw) {
    // No usable lower bound: serial exact scan in ascending index order.
    for (size_t idx = 0; idx < n; ++idx) {
      WPRED_COUNT_ADD("similarity.query.exact", 1);
      WPRED_ASSIGN_OR_RETURN(const double distance,
                             MeasureDistance(measure_, query, corpus_[idx]));
      consider({idx, distance});
    }
    std::sort(heap.begin(), heap.end(), NeighborLess);
    return heap;
  }

  // UCR-suite visit order: candidates ascend by (LB_Kim, index), so the
  // true neighbours tend to tighten the cutoff first, and because the sort
  // key is itself the first cascade stage, the first Kim prune discards
  // every remaining candidate at once.
  //
  // Correctness under an arbitrary visit order needs two guards the naive
  // ascending-index scan does not:
  //   - lower bounds discard on strict `lb > cutoff` only — a candidate
  //     tying the current k-th distance may still win the index tie-break,
  //     so it must reach the heap, where NeighborLess settles the tie;
  //   - the kernel abandons against the next double above the cutoff, so
  //     abandonment proves distance > cutoff, never distance == cutoff.
  // Survivors' distances come from the same kernel cells as the plain scan
  // (the cutoff decides when to stop, never what is computed), so the
  // result stays bit-identical to the exhaustive argsort.
  std::vector<Neighbor> by_kim(n);
  for (size_t idx = 0; idx < n; ++idx) {
    by_kim[idx] = {idx, kind_ == MeasureKind::kDependentDtw
                            ? query_internal::LbKimDependent(query,
                                                             corpus_[idx])
                            : query_internal::LbKimIndependent(query,
                                                               corpus_[idx])};
  }
  std::sort(by_kim.begin(), by_kim.end(), NeighborLess);

  for (size_t pos = 0; pos < n; ++pos) {
    const size_t idx = by_kim[pos].index;
    const Matrix& candidate = corpus_[idx];
    const bool full = heap.size() == k_eff;
    const double cutoff = full ? heap.front().distance : kInf;
    if (full && by_kim[pos].distance > cutoff) {
      const auto remaining = static_cast<uint64_t>(n - pos);
      WPRED_COUNT_ADD("similarity.lb.pruned", remaining);
      WPRED_COUNT_ADD("similarity.lb.kim_pruned", remaining);
      break;  // sorted by LB_Kim: every remaining candidate is out too
    }
    if (full && query.rows() == candidate.rows()) {
      // LB_Keogh is only valid when the Sakoe-Chiba band is exactly the
      // envelope's window, i.e. for equal lengths (unequal lengths widen
      // the band to the length difference); other candidates fall through
      // to the early-abandoning kernel. Both directions (query against the
      // cached candidate envelope, candidate against the query's) are
      // valid lower bounds, so the max prunes strictly more.
      const double lb =
          kind_ == MeasureKind::kDependentDtw
              ? std::max(
                    query_internal::LbKeoghDependent(query,
                                                     envelopes->At(idx)),
                    query_internal::LbKeoghDependent(candidate,
                                                     query_envelope))
              : std::max(
                    query_internal::LbKeoghIndependent(query,
                                                       envelopes->At(idx)),
                    query_internal::LbKeoghIndependent(candidate,
                                                       query_envelope));
      if (lb > cutoff) {
        WPRED_COUNT_ADD("similarity.lb.pruned", 1);
        WPRED_COUNT_ADD("similarity.lb.keogh_pruned", 1);
        continue;
      }
    }
    WPRED_COUNT_ADD("similarity.query.exact", 1);
    const double abandon_cutoff =
        cutoff < kInf ? std::nextafter(cutoff, kInf) : kInf;
    Result<DtwEarlyAbandon> outcome =
        kind_ == MeasureKind::kDependentDtw
            ? DependentDtwDistanceEarlyAbandon(query, candidate, window_,
                                               abandon_cutoff)
            : IndependentDtwDistanceEarlyAbandon(query, candidate, window_,
                                                 abandon_cutoff);
    WPRED_ASSIGN_OR_RETURN(const DtwEarlyAbandon ea, std::move(outcome));
    if (ea.abandoned) {
      WPRED_COUNT_ADD("similarity.dtw.abandoned_candidates", 1);
      continue;
    }
    consider({idx, ea.distance});
  }
  std::sort(heap.begin(), heap.end(), NeighborLess);
  return heap;
}

Result<std::vector<Neighbor>> RankNeighbors(
    const ExperimentCorpus& corpus, const Experiment& query, size_t k,
    Representation representation, const std::string& measure,
    const std::vector<size_t>& features, int window, int num_threads) {
  if (corpus.empty()) {
    return Status::InvalidArgument("need at least one corpus experiment");
  }
  const NormalizationContext ctx = ComputeNormalization(corpus);
  WPRED_ASSIGN_OR_RETURN(
      std::vector<Matrix> reps,
      ParallelMap<Matrix>(corpus.size(), num_threads,
                          [&](size_t i) -> Result<Matrix> {
                            return BuildRepresentation(representation,
                                                       corpus[i], features,
                                                       ctx);
                          }));
  WPRED_ASSIGN_OR_RETURN(
      const Matrix query_rep,
      BuildRepresentation(representation, query, features, ctx));
  WPRED_ASSIGN_OR_RETURN(
      const SimilarityQueryEngine engine,
      SimilarityQueryEngine::Build(std::move(reps), measure, window,
                                   num_threads));
  return engine.RankNeighbors(query_rep, k);
}

}  // namespace wpred
