#include "similarity/query.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <deque>
#include <limits>
#include <mutex>
#include <numeric>
#include <utility>

#include "common/parallel.h"
#include "common/simd.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "similarity/dtw.h"
#include "similarity/measures.h"

namespace wpred {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Ascending (distance, index) order: the tie-break every ranking surface in
// wpred pins, so equal-distance neighbours resolve to the smaller corpus
// index on every platform.
bool NeighborLess(const Neighbor& a, const Neighbor& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.index < b.index;
}

double RowSquaredDistance(const Matrix& a, size_t ra, const Matrix& b,
                          size_t rb) {
  double acc = 0.0;
  for (size_t f = 0; f < a.cols(); ++f) {
    const double d = a(ra, f) - b(rb, f);
    acc += d * d;
  }
  return acc;
}

// Lemire-style streaming min/max over one contiguous column: each index
// enters and leaves each monotonic deque once, so the envelope costs
// O(rows) regardless of the band width. The scalar reference algorithm.
void EnvelopeColumnDeque(const double* col, size_t rows, size_t band,
                         double* lower, double* upper) {
  std::deque<size_t> max_q;
  std::deque<size_t> min_q;
  size_t next = 0;  // first row not yet offered to the deques
  for (size_t i = 0; i < rows; ++i) {
    const size_t hi = std::min(rows - 1, i + band);
    while (next <= hi) {
      const double v = col[next];
      while (!max_q.empty() && col[max_q.back()] <= v) max_q.pop_back();
      max_q.push_back(next);
      while (!min_q.empty() && col[min_q.back()] >= v) min_q.pop_back();
      min_q.push_back(next);
      ++next;
    }
    const size_t lo = i > band ? i - band : 0;
    while (max_q.front() < lo) max_q.pop_front();
    while (min_q.front() < lo) min_q.pop_front();
    upper[i] = col[max_q.front()];
    lower[i] = col[min_q.front()];
  }
}

// Scratch buffers for the van Herk / Gil-Werman envelope pass, hoisted so
// one allocation serves every column of a series.
struct EnvelopeScratch {
  std::vector<double> xmax, xmin;
  std::vector<double> pre_max, pre_min;
  std::vector<double> suf_max, suf_min;
};

// van Herk / Gil-Werman windowed min/max: pad the column to length
// rows + 2·band, take block prefix and suffix scans with block width
// w = 2·band + 1, then every window [i, i + 2·band] (padded coordinates)
// spans at most two adjacent blocks and its extremum is
// combine(suffix[i], prefix[i + 2·band]). Three comparisons per element,
// no branches or deque churn, and the combine pass is elementwise. Exact —
// only comparisons, no arithmetic — so it agrees with the deque up to the
// sign of a zero (both return the true windowed extremum).
//
// Requires band + 1 < rows (wider bands take the global min/max shortcut
// in BuildEnvelopeColumns).
void EnvelopeColumnVanHerk(const double* col, size_t rows, size_t band,
                           EnvelopeScratch& s, double* lower, double* upper) {
  const size_t w = 2 * band + 1;
  const size_t np = rows + 2 * band;
  s.xmax.assign(np, -kInf);
  s.xmin.assign(np, kInf);
  std::copy(col, col + rows, s.xmax.begin() + band);
  std::copy(col, col + rows, s.xmin.begin() + band);
  s.pre_max.resize(np);
  s.pre_min.resize(np);
  s.suf_max.resize(np);
  s.suf_min.resize(np);
  for (size_t j = 0; j < np; ++j) {
    if (j % w == 0) {
      s.pre_max[j] = s.xmax[j];
      s.pre_min[j] = s.xmin[j];
    } else {
      s.pre_max[j] = std::max(s.pre_max[j - 1], s.xmax[j]);
      s.pre_min[j] = std::min(s.pre_min[j - 1], s.xmin[j]);
    }
  }
  for (size_t j = np; j-- > 0;) {
    if (j % w == w - 1 || j == np - 1) {
      s.suf_max[j] = s.xmax[j];
      s.suf_min[j] = s.xmin[j];
    } else {
      s.suf_max[j] = std::max(s.suf_max[j + 1], s.xmax[j]);
      s.suf_min[j] = std::min(s.suf_min[j + 1], s.xmin[j]);
    }
  }
  for (size_t i = 0; i < rows; ++i) {
    upper[i] = std::max(s.suf_max[i], s.pre_max[i + 2 * band]);
    lower[i] = std::min(s.suf_min[i], s.pre_min[i + 2 * band]);
  }
}

}  // namespace

namespace query_internal {

void BuildEnvelopeColumns(const Matrix& series, int window, double* lower,
                          double* upper) {
  const size_t rows = series.rows();
  const size_t cols = series.cols();
  const size_t band = window > 0 ? static_cast<size_t>(window) : rows;
  std::vector<double> col(rows);
  const auto load_column = [&](size_t f) {
    for (size_t r = 0; r < rows; ++r) col[r] = series(r, f);
  };
  if (band + 1 >= rows) {
    // Every window covers the whole column: the envelope degenerates to the
    // global min/max (the common unbounded-window case), one reduction per
    // column instead of a windowed pass.
    for (size_t f = 0; f < cols; ++f) {
      load_column(f);
      const double hi = simd::MaxValue(col.data(), rows);
      const double lo = simd::MinValue(col.data(), rows);
      std::fill(upper + f * rows, upper + (f + 1) * rows, hi);
      std::fill(lower + f * rows, lower + (f + 1) * rows, lo);
    }
    return;
  }
  if (simd::Enabled()) {
    EnvelopeScratch scratch;
    for (size_t f = 0; f < cols; ++f) {
      load_column(f);
      EnvelopeColumnVanHerk(col.data(), rows, band, scratch, lower + f * rows,
                            upper + f * rows);
    }
  } else {
    for (size_t f = 0; f < cols; ++f) {
      load_column(f);
      EnvelopeColumnDeque(col.data(), rows, band, lower + f * rows,
                          upper + f * rows);
    }
  }
}

SeriesEnvelope BuildEnvelope(const Matrix& series, int window) {
  const size_t rows = series.rows();
  const size_t cols = series.cols();
  std::vector<double> lower(series.size());
  std::vector<double> upper(series.size());
  BuildEnvelopeColumns(series, window, lower.data(), upper.data());
  SeriesEnvelope envelope{Matrix(rows, cols), Matrix(rows, cols)};
  for (size_t f = 0; f < cols; ++f) {
    for (size_t r = 0; r < rows; ++r) {
      envelope.lower(r, f) = lower[f * rows + r];
      envelope.upper(r, f) = upper[f * rows + r];
    }
  }
  return envelope;
}

double LbKimDependent(const Matrix& query, const Matrix& candidate) {
  WPRED_DCHECK_EQ(query.cols(), candidate.cols());
  WPRED_DCHECK(query.rows() > 0 && candidate.rows() > 0);
  double acc = RowSquaredDistance(query, 0, candidate, 0);
  if (query.rows() + candidate.rows() > 2) {
    acc += RowSquaredDistance(query, query.rows() - 1, candidate,
                              candidate.rows() - 1);
  }
  return std::sqrt(acc);
}

double LbKimIndependent(const Matrix& query, const Matrix& candidate) {
  WPRED_DCHECK_EQ(query.cols(), candidate.cols());
  WPRED_DCHECK(query.rows() > 0 && candidate.rows() > 0);
  const bool distinct_endpoints = query.rows() + candidate.rows() > 2;
  double total = 0.0;
  for (size_t f = 0; f < query.cols(); ++f) {
    const double first = query(0, f) - candidate(0, f);
    double acc = first * first;
    if (distinct_endpoints) {
      const double last = query(query.rows() - 1, f) -
                          candidate(candidate.rows() - 1, f);
      acc += last * last;
    }
    total += std::sqrt(acc);
  }
  return total / static_cast<double>(query.cols());
}

double LbKeoghDependent(const Matrix& query, const SeriesEnvelope& envelope) {
  WPRED_DCHECK_EQ(query.rows(), envelope.upper.rows());
  WPRED_DCHECK_EQ(query.cols(), envelope.upper.cols());
  double acc = 0.0;
  for (size_t i = 0; i < query.rows(); ++i) {
    for (size_t f = 0; f < query.cols(); ++f) {
      const double v = query(i, f);
      const double hi = envelope.upper(i, f);
      const double lo = envelope.lower(i, f);
      if (v > hi) {
        const double d = v - hi;
        acc += d * d;
      } else if (v < lo) {
        const double d = lo - v;
        acc += d * d;
      }
    }
  }
  return std::sqrt(acc);
}

double LbKeoghIndependent(const Matrix& query, const SeriesEnvelope& envelope) {
  WPRED_DCHECK_EQ(query.rows(), envelope.upper.rows());
  WPRED_DCHECK_EQ(query.cols(), envelope.upper.cols());
  double total = 0.0;
  for (size_t f = 0; f < query.cols(); ++f) {
    double acc = 0.0;
    for (size_t i = 0; i < query.rows(); ++i) {
      const double v = query(i, f);
      const double hi = envelope.upper(i, f);
      const double lo = envelope.lower(i, f);
      if (v > hi) {
        const double d = v - hi;
        acc += d * d;
      } else if (v < lo) {
        const double d = lo - v;
        acc += d * d;
      }
    }
    total += std::sqrt(acc);
  }
  return total / static_cast<double>(query.cols());
}

}  // namespace query_internal

EnvelopeCache::~EnvelopeCache() {
  Node* node = head_.load(std::memory_order_acquire);
  while (node != nullptr) {
    Node* next = node->next;
    delete node;
    node = next;
  }
}

EnvelopeCache::EnvelopeCache(EnvelopeCache&& other) noexcept
    : head_(other.head_.exchange(nullptr, std::memory_order_acq_rel)) {}

EnvelopeCache& EnvelopeCache::operator=(EnvelopeCache&& other) noexcept {
  if (this == &other) return *this;
  Node* mine = head_.exchange(
      other.head_.exchange(nullptr, std::memory_order_acq_rel),
      std::memory_order_acq_rel);
  while (mine != nullptr) {
    Node* next = mine->next;
    delete mine;
    mine = next;
  }
  return *this;
}

const EnvelopeCache::Node* EnvelopeCache::Find(int window) const {
  // Acquire on the head pairs with the release publish in GetOrBuild, so a
  // reader that sees a node sees its fully-built EnvelopeSet; `next` links
  // are immutable after publication.
  for (const Node* node = head_.load(std::memory_order_acquire);
       node != nullptr; node = node->next) {
    if (node->window == window) return node;
  }
  return nullptr;
}

Result<const EnvelopeSet*> EnvelopeCache::GetOrBuild(
    const ShardedCorpus& corpus, int window, int num_threads) {
  if (const Node* hit = Find(window)) {
    WPRED_COUNT_ADD("similarity.envelope.cache_hits", 1);
    return &hit->set;
  }
  // Cold window: serialise the build, then re-check — a racing caller may
  // have published this window while we waited for the lock.
  MutexLock lock(build_mu_);
  if (const Node* hit = Find(window)) {
    WPRED_COUNT_ADD("similarity.envelope.cache_hits", 1);
    return &hit->set;
  }
  WPRED_COUNT_ADD("similarity.envelope.cache_misses", 1);
  EnvelopeSet set;
  set.shard_traces_ = corpus.shard_traces();
  set.blocks_.resize(corpus.num_shards());
  WPRED_RETURN_IF_ERROR(
      ParallelFor(corpus.num_shards(), num_threads, [&](size_t s) -> Status {
        const CorpusShard shard = corpus.shard(s);
        EnvelopeSet::Block& block = set.blocks_[s];
        block.offsets.assign(shard.size(), 0);
        size_t total = 0;
        for (size_t i = shard.begin; i < shard.end; ++i) {
          block.offsets[i - shard.begin] = total;
          total += corpus[i].size();
        }
        block.lower.assign(total, 0.0);
        block.upper.assign(total, 0.0);
        for (size_t i = shard.begin; i < shard.end; ++i) {
          const size_t off = block.offsets[i - shard.begin];
          query_internal::BuildEnvelopeColumns(corpus[i], window,
                                               block.lower.data() + off,
                                               block.upper.data() + off);
        }
        return Status::OK();
      }));
  WPRED_COUNT_ADD("similarity.envelope.builds",
                  static_cast<uint64_t>(corpus.size()));
  Node* node = new Node;
  node->window = window;
  node->set = std::move(set);
  // wpred-lint: allow(atomics-order): head_ is written only under build_mu_,
  // held here — the relaxed load cannot miss a concurrent publish, and the
  // release store below orders the whole node before readers can reach it.
  node->next = head_.load(std::memory_order_relaxed);
  head_.store(node, std::memory_order_release);
  return &node->set;
}

Status EnvelopeCache::ExtendForAppend(const ShardedCorpus& corpus,
                                      size_t old_size, int num_threads) {
  WPRED_DCHECK_LE(old_size, corpus.size());
  const size_t new_count = corpus.size() - old_size;
  if (new_count == 0) return Status::OK();
  // The build mutex serialises against concurrent GetOrBuild calls; readers
  // must be quiescent (single-writer contract in the header).
  MutexLock lock(build_mu_);
  for (Node* node = head_.load(std::memory_order_acquire); node != nullptr;
       node = node->next) {
    EnvelopeSet& set = node->set;
    WPRED_DCHECK_EQ(set.shard_traces_, corpus.shard_traces());
    // Pre-size the tail blocks — extend the possibly part-filled last old
    // shard and add new ones — so the parallel loop below only does
    // slot-indexed writes (determinism discipline of DESIGN.md §7).
    // Existing offsets and envelope data are untouched: appends only grow
    // each block's arrays at the tail.
    set.blocks_.resize(corpus.num_shards());
    for (size_t s = corpus.shard_of(old_size == 0 ? 0 : old_size - 1);
         s < corpus.num_shards(); ++s) {
      const CorpusShard shard = corpus.shard(s);
      EnvelopeSet::Block& block = set.blocks_[s];
      const size_t old_local = block.offsets.size();
      block.offsets.resize(shard.size());
      size_t total =
          old_local == 0
              ? 0
              : block.offsets[old_local - 1] +
                    corpus[shard.begin + old_local - 1].size();
      for (size_t t = old_local; t < shard.size(); ++t) {
        block.offsets[t] = total;
        total += corpus[shard.begin + t].size();
      }
      block.lower.resize(total, 0.0);
      block.upper.resize(total, 0.0);
    }
    WPRED_RETURN_IF_ERROR(
        ParallelFor(new_count, num_threads, [&](size_t j) -> Status {
          const size_t i = old_size + j;
          EnvelopeSet::Block& block = set.blocks_[i / set.shard_traces_];
          const size_t off = block.offsets[i % set.shard_traces_];
          query_internal::BuildEnvelopeColumns(corpus[i], node->window,
                                               block.lower.data() + off,
                                               block.upper.data() + off);
          return Status::OK();
        }));
    WPRED_COUNT_ADD("similarity.envelope.builds",
                    static_cast<uint64_t>(new_count));
    WPRED_COUNT_ADD("similarity.envelope.appended",
                    static_cast<uint64_t>(new_count));
  }
  return Status::OK();
}

const EnvelopeSet* EnvelopeCache::Lookup(int window) const {
  const Node* node = Find(window);
  if (node == nullptr) {
    WPRED_COUNT_ADD("similarity.envelope.cache_misses", 1);
    return nullptr;
  }
  WPRED_COUNT_ADD("similarity.envelope.cache_hits", 1);
  return &node->set;
}

Result<SimilarityQueryEngine> SimilarityQueryEngine::Build(
    std::vector<Matrix> corpus, const std::string& measure, int window,
    int num_threads, size_t shard_traces, int sketch_bins) {
  if (corpus.empty()) {
    return Status::InvalidArgument("need at least one corpus entry");
  }
  if (sketch_bins == 1) {
    return Status::InvalidArgument(
        "sketch_bins must be 0 (default), >= 2, or negative (disabled); a "
        "one-bin histogram can never separate traces");
  }
  SimilarityQueryEngine engine;
  if (measure == "Dependent-DTW") {
    engine.kind_ = MeasureKind::kDependentDtw;
  } else if (measure == "Independent-DTW") {
    engine.kind_ = MeasureKind::kIndependentDtw;
  } else {
    const std::vector<std::string> norms = NormMeasureNames();
    const std::vector<std::string> mts = MtsOnlyMeasureNames();
    const bool known =
        std::find(norms.begin(), norms.end(), measure) != norms.end() ||
        std::find(mts.begin(), mts.end(), measure) != mts.end();
    if (!known) {
      return Status::NotFound("unknown similarity measure: " + measure);
    }
    engine.kind_ = MeasureKind::kGeneric;
  }
  for (size_t i = 0; i < corpus.size(); ++i) {
    if (corpus[i].empty()) {
      return Status::InvalidArgument(
          StrFormat("corpus entry %zu is an empty matrix", i));
    }
    if (!AllFinite(corpus[i])) {
      return Status::InvalidArgument(
          StrFormat("corpus entry %zu has non-finite values", i));
    }
    if (corpus[i].cols() != corpus[0].cols()) {
      return Status::InvalidArgument(
          StrFormat("corpus entry %zu has %zu features, entry 0 has %zu", i,
                    corpus[i].cols(), corpus[0].cols()));
    }
  }
  engine.measure_ = measure;
  engine.window_ = window;
  engine.corpus_ = ShardedCorpus(std::move(corpus), shard_traces);
  if (engine.kind_ != MeasureKind::kGeneric) {
    WPRED_RETURN_IF_ERROR(
        engine.envelopes_.GetOrBuild(engine.corpus_, window, num_threads)
            .status());
    if (sketch_bins >= 0) {
      const int bins =
          sketch_bins == 0 ? TraceSketchSet::kDefaultBins : sketch_bins;
      WPRED_RETURN_IF_ERROR(
          engine.sketches_.Build(engine.corpus_, bins, num_threads));
      engine.sketch_bins_ = bins;
    }
  }
  return engine;
}

Status SimilarityQueryEngine::AppendTraces(std::vector<Matrix> traces,
                                           int num_threads) {
  if (corpus_.empty()) {
    return Status::FailedPrecondition(
        "AppendTraces on an engine that was never Built");
  }
  if (traces.empty()) return Status::OK();
  const size_t old_size = corpus_.size();
  for (size_t j = 0; j < traces.size(); ++j) {
    if (traces[j].empty()) {
      return Status::InvalidArgument(
          StrFormat("appended trace %zu (global index %zu) is an empty "
                    "matrix",
                    j, old_size + j));
    }
    if (!AllFinite(traces[j])) {
      return Status::InvalidArgument(
          StrFormat("appended trace %zu (global index %zu) has non-finite "
                    "values",
                    j, old_size + j));
    }
    if (traces[j].cols() != corpus_[0].cols()) {
      return Status::InvalidArgument(
          StrFormat("appended trace %zu has %zu features, corpus has %zu", j,
                    traces[j].cols(), corpus_[0].cols()));
    }
  }
  corpus_.Append(std::move(traces));
  WPRED_COUNT_ADD("similarity.corpus.appended_traces",
                  static_cast<uint64_t>(corpus_.size() - old_size));
  if (kind_ != MeasureKind::kGeneric) {
    WPRED_RETURN_IF_ERROR(
        envelopes_.ExtendForAppend(corpus_, old_size, num_threads));
    if (sketch_bins_ > 0) {
      WPRED_RETURN_IF_ERROR(
          sketches_.ExtendForAppend(corpus_, old_size, num_threads));
    }
  }
  return Status::OK();
}

Result<double> SimilarityQueryEngine::ExactDistance(
    const Matrix& query, const Matrix& candidate) const {
  switch (kind_) {
    case MeasureKind::kDependentDtw:
      return DependentDtwDistance(query, candidate, window_);
    case MeasureKind::kIndependentDtw:
      return IndependentDtwDistance(query, candidate, window_);
    case MeasureKind::kGeneric:
      break;
  }
  return MeasureDistance(measure_, query, candidate);
}

Result<Vector> SimilarityQueryEngine::Distances(const Matrix& query,
                                                int num_threads) const {
  if (query.empty()) return Status::InvalidArgument("empty query");
  if (!AllFinite(query)) {
    return Status::InvalidArgument("non-finite values in query");
  }
  // Shard-granular parallel loop: one task per contiguous shard, each with
  // slot-indexed writes into the global-index output, so results are in
  // corpus order and independent of schedule and thread count.
  Vector out(corpus_.size());
  if (kind_ != MeasureKind::kGeneric) {
    if (query.cols() != corpus_[0].cols()) {
      return Status::InvalidArgument("feature count mismatch");
    }
    // One column-major query copy serves every candidate; candidates come
    // from the corpus's shard-contiguous column-major mirror, so the DTW
    // span kernels never copy a column.
    const std::vector<double> query_cols = query.ColumnMajor();
    WPRED_RETURN_IF_ERROR(ParallelFor(
        corpus_.num_shards(), num_threads, [&](size_t s) -> Status {
          const CorpusShard shard = corpus_.shard(s);
          for (size_t i = shard.begin; i < shard.end; ++i) {
            Result<DtwEarlyAbandon> r =
                kind_ == MeasureKind::kDependentDtw
                    ? DependentDtwColsEarlyAbandon(
                          query_cols.data(), query.rows(),
                          corpus_.col_data(i), corpus_[i].rows(),
                          query.cols(), window_, kInf)
                    : IndependentDtwColsEarlyAbandon(
                          query_cols.data(), query.rows(),
                          corpus_.col_data(i), corpus_[i].rows(),
                          query.cols(), window_, kInf);
            WPRED_ASSIGN_OR_RETURN(const DtwEarlyAbandon ea, std::move(r));
            out[i] = ea.distance;
          }
          return Status::OK();
        }));
    return out;
  }
  WPRED_RETURN_IF_ERROR(
      ParallelFor(corpus_.num_shards(), num_threads, [&](size_t s) -> Status {
        const CorpusShard shard = corpus_.shard(s);
        for (size_t i = shard.begin; i < shard.end; ++i) {
          WPRED_ASSIGN_OR_RETURN(out[i], ExactDistance(query, corpus_[i]));
        }
        return Status::OK();
      }));
  return out;
}

Result<std::vector<Neighbor>> SimilarityQueryEngine::RankNeighbors(
    const Matrix& query, size_t k) const {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (query.empty()) return Status::InvalidArgument("empty query");
  if (!AllFinite(query)) {
    return Status::InvalidArgument("non-finite values in query");
  }
  const size_t n = corpus_.size();
  const size_t k_eff = std::min(k, n);

  if (k_eff == n) {
    // Whole-corpus ranking: nothing can be pruned (every candidate is in
    // the result), so take the exact parallel scan plus a stable argsort.
    WPRED_ASSIGN_OR_RETURN(const Vector distances, Distances(query));
    WPRED_COUNT_ADD("similarity.query.candidates", static_cast<uint64_t>(n));
    WPRED_COUNT_ADD("similarity.query.exact", static_cast<uint64_t>(n));
    std::vector<Neighbor> ranked(n);
    for (size_t i = 0; i < n; ++i) ranked[i] = {i, distances[i]};
    std::sort(ranked.begin(), ranked.end(), NeighborLess);
    return ranked;
  }

  const bool dtw = kind_ != MeasureKind::kGeneric;
  const EnvelopeSet* envelopes = nullptr;
  std::vector<double> query_cols;
  std::vector<double> query_env_lower;
  std::vector<double> query_env_upper;
  std::vector<double> query_sketch;
  if (dtw) {
    if (query.cols() != corpus_[0].cols()) {
      return Status::InvalidArgument("feature count mismatch");
    }
    envelopes = envelopes_.Lookup(window_);
    if (envelopes == nullptr) {
      return Status::FailedPrecondition(
          "envelope cache missing the engine window");  // unreachable: Build
                                                        // prebuilds it
    }
    // Per-call query-side state, built once and reused by every candidate:
    // the column-major mirror feeds the SIMD Keogh and DTW kernels, the
    // query envelope buys the tighter max of both LB_Keogh directions, and
    // the query sketch drives the tier-0 bound.
    query_cols = query.ColumnMajor();
    query_env_lower.resize(query.size());
    query_env_upper.resize(query.size());
    query_internal::BuildEnvelopeColumns(query, window_,
                                         query_env_lower.data(),
                                         query_env_upper.data());
    if (sketch_bins_ > 0) query_sketch = sketches_.SketchSeries(query);
  }

  WPRED_COUNT_ADD("similarity.query.candidates", static_cast<uint64_t>(n));
  std::vector<Neighbor> heap;  // max-heap on (distance, index)
  heap.reserve(k_eff);
  const auto consider = [&heap, k_eff](const Neighbor& entry) {
    if (heap.size() < k_eff) {
      heap.push_back(entry);
      std::push_heap(heap.begin(), heap.end(), NeighborLess);
    } else if (NeighborLess(entry, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), NeighborLess);
      heap.back() = entry;
      std::push_heap(heap.begin(), heap.end(), NeighborLess);
    }
  };

  if (!dtw) {
    // No usable lower bound: serial exact scan in ascending index order.
    for (size_t idx = 0; idx < n; ++idx) {
      WPRED_COUNT_ADD("similarity.query.exact", 1);
      WPRED_ASSIGN_OR_RETURN(const double distance,
                             MeasureDistance(measure_, query, corpus_[idx]));
      consider({idx, distance});
    }
    std::sort(heap.begin(), heap.end(), NeighborLess);
    return heap;
  }

  // UCR-suite visit order: candidates ascend by (tier-0 bound, index) — the
  // sketch bound when the tier is on (max of LB_Kim and the histogram/PAA
  // bounds, O(d·bins) per candidate), bare LB_Kim otherwise — so the true
  // neighbours tend to tighten the cutoff first, and because the sort key
  // is itself the first cascade stage, the first tier-0 prune discards
  // every remaining candidate at once.
  //
  // Correctness under an arbitrary visit order needs two guards the naive
  // ascending-index scan does not:
  //   - lower bounds discard on strict `lb > cutoff` only — a candidate
  //     tying the current k-th distance may still win the index tie-break,
  //     so it must reach the heap, where NeighborLess settles the tie;
  //   - the kernel abandons against the next double above the cutoff, so
  //     abandonment proves distance > cutoff, never distance == cutoff.
  // Survivors' distances come from the same kernel cells as the plain scan
  // (the cutoff decides when to stop, never what is computed), so the
  // result stays bit-identical to the exhaustive argsort — with the sketch
  // tier on or off.
  std::vector<Neighbor> by_lb(n);
  std::vector<double> kims;  // sketch mode: the kim component, for counters
  if (sketch_bins_ > 0) {
    kims.resize(n);
    const SketchLayout& layout = sketches_.layout();
    for (size_t idx = 0; idx < n; ++idx) {
      const SketchBound bound =
          kind_ == MeasureKind::kDependentDtw
              ? DependentSketchBound(query_sketch.data(), sketches_.At(idx),
                                     layout, window_)
              : IndependentSketchBound(query_sketch.data(), sketches_.At(idx),
                                       layout, window_);
      by_lb[idx] = {idx, bound.combined};
      kims[idx] = bound.kim;
    }
  } else {
    for (size_t idx = 0; idx < n; ++idx) {
      by_lb[idx] = {idx,
                    kind_ == MeasureKind::kDependentDtw
                        ? query_internal::LbKimDependent(query, corpus_[idx])
                        : query_internal::LbKimIndependent(query,
                                                           corpus_[idx])};
    }
  }
  std::sort(by_lb.begin(), by_lb.end(), NeighborLess);

  for (size_t pos = 0; pos < n; ++pos) {
    const size_t idx = by_lb[pos].index;
    const Matrix& candidate = corpus_[idx];
    const bool full = heap.size() == k_eff;
    const double cutoff = full ? heap.front().distance : kInf;
    if (full && by_lb[pos].distance > cutoff) {
      // Sorted by the tier-0 bound: every remaining candidate is out too.
      // Attribution: a tail candidate whose kim component alone clears the
      // cutoff would have been pruned by the pre-sketch cascade as well
      // (kim_pruned); the rest are pruned only because the sketch's
      // histogram/PAA bounds are tighter (sketch.pruned).
      const auto remaining = static_cast<uint64_t>(n - pos);
      WPRED_COUNT_ADD("similarity.lb.pruned", remaining);
      if (kims.empty()) {
        WPRED_COUNT_ADD("similarity.lb.kim_pruned", remaining);
      } else {
        uint64_t kim_alone = 0;
        for (size_t p = pos; p < n; ++p) {
          if (kims[by_lb[p].index] > cutoff) ++kim_alone;
        }
        WPRED_COUNT_ADD("similarity.lb.kim_pruned", kim_alone);
        WPRED_COUNT_ADD("similarity.sketch.pruned", remaining - kim_alone);
      }
      break;
    }
    if (full && query.rows() == candidate.rows()) {
      // LB_Keogh is only valid when the Sakoe-Chiba band is exactly the
      // envelope's window, i.e. for equal lengths (unequal lengths widen
      // the band to the length difference); other candidates fall through
      // to the early-abandoning kernel. Both directions (query against the
      // cached candidate envelope, candidate against the query's) are
      // valid lower bounds, so the max prunes strictly more. All operands
      // are column-major and contiguous, so each direction is one SIMD
      // envelope-gap reduction (per feature, for the independent measure).
      const size_t rows = candidate.rows();
      const double* cand_cols = corpus_.col_data(idx);
      double lb;
      if (kind_ == MeasureKind::kDependentDtw) {
        lb = std::max(
            std::sqrt(simd::EnvelopeGapSq(query_cols.data(),
                                          envelopes->lower(idx),
                                          envelopes->upper(idx),
                                          query.size())),
            std::sqrt(simd::EnvelopeGapSq(cand_cols, query_env_lower.data(),
                                          query_env_upper.data(),
                                          query.size())));
      } else {
        const size_t d = query.cols();
        double forward = 0.0;
        double backward = 0.0;
        for (size_t f = 0; f < d; ++f) {
          forward += std::sqrt(
              simd::EnvelopeGapSq(query_cols.data() + f * rows,
                                  envelopes->lower(idx) + f * rows,
                                  envelopes->upper(idx) + f * rows, rows));
          backward += std::sqrt(
              simd::EnvelopeGapSq(cand_cols + f * rows,
                                  query_env_lower.data() + f * rows,
                                  query_env_upper.data() + f * rows, rows));
        }
        lb = std::max(forward, backward) / static_cast<double>(d);
      }
      if (lb > cutoff) {
        WPRED_COUNT_ADD("similarity.lb.pruned", 1);
        WPRED_COUNT_ADD("similarity.lb.keogh_pruned", 1);
        continue;
      }
    }
    WPRED_COUNT_ADD("similarity.query.exact", 1);
    const double abandon_cutoff =
        cutoff < kInf ? std::nextafter(cutoff, kInf) : kInf;
    Result<DtwEarlyAbandon> outcome =
        kind_ == MeasureKind::kDependentDtw
            ? DependentDtwColsEarlyAbandon(query_cols.data(), query.rows(),
                                           corpus_.col_data(idx),
                                           candidate.rows(), query.cols(),
                                           window_, abandon_cutoff)
            : IndependentDtwColsEarlyAbandon(query_cols.data(), query.rows(),
                                             corpus_.col_data(idx),
                                             candidate.rows(), query.cols(),
                                             window_, abandon_cutoff);
    WPRED_ASSIGN_OR_RETURN(const DtwEarlyAbandon ea, std::move(outcome));
    if (ea.abandoned) {
      WPRED_COUNT_ADD("similarity.dtw.abandoned_candidates", 1);
      continue;
    }
    consider({idx, ea.distance});
  }
  std::sort(heap.begin(), heap.end(), NeighborLess);
  return heap;
}

Result<std::vector<Neighbor>> RankNeighbors(
    const ExperimentCorpus& corpus, const Experiment& query, size_t k,
    Representation representation, const std::string& measure,
    const std::vector<size_t>& features, int window, int num_threads) {
  if (corpus.empty()) {
    return Status::InvalidArgument("need at least one corpus experiment");
  }
  const NormalizationContext ctx = ComputeNormalization(corpus);
  WPRED_ASSIGN_OR_RETURN(
      std::vector<Matrix> reps,
      ParallelMap<Matrix>(corpus.size(), num_threads,
                          [&](size_t i) -> Result<Matrix> {
                            return BuildRepresentation(representation,
                                                       corpus[i], features,
                                                       ctx);
                          }));
  WPRED_ASSIGN_OR_RETURN(
      const Matrix query_rep,
      BuildRepresentation(representation, query, features, ctx));
  WPRED_ASSIGN_OR_RETURN(
      const SimilarityQueryEngine engine,
      SimilarityQueryEngine::Build(std::move(reps), measure, window,
                                   num_threads));
  return engine.RankNeighbors(query_rep, k);
}

}  // namespace wpred
