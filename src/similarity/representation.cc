#include "similarity/representation.h"

#include <algorithm>
#include <cmath>

#include "linalg/stats.h"

namespace wpred {
namespace {

// Normalised value vector of one catalog feature within an experiment:
// resource features come from the sampled time-series, plan features from
// the per-query plan observations.
Result<Vector> FeatureValues(const Experiment& experiment, size_t feature,
                             const NormalizationContext& ctx) {
  if (feature >= kNumFeatures) {
    return Status::OutOfRange("feature index out of catalog range");
  }
  Vector raw;
  if (feature < kNumResourceFeatures) {
    if (experiment.resource.num_samples() == 0) {
      return Status::InvalidArgument("experiment has no resource samples");
    }
    raw = experiment.resource.values.Col(feature);
  } else {
    if (experiment.plans.num_observations() == 0) {
      return Status::InvalidArgument("experiment has no plan observations");
    }
    raw = experiment.plans.values.Col(feature - kNumResourceFeatures);
  }
  for (double& v : raw) v = NormalizeValue(ctx, feature, v);
  return raw;
}

}  // namespace

NormalizationContext ComputeNormalization(const ExperimentCorpus& corpus) {
  NormalizationContext ctx;
  ctx.min.assign(kNumFeatures, 1e300);
  ctx.max.assign(kNumFeatures, -1e300);
  for (const Experiment& e : corpus.experiments()) {
    for (size_t f = 0; f < kNumResourceFeatures; ++f) {
      for (size_t r = 0; r < e.resource.num_samples(); ++r) {
        const double v = e.resource.values(r, f);
        ctx.min[f] = std::min(ctx.min[f], v);
        ctx.max[f] = std::max(ctx.max[f], v);
      }
    }
    for (size_t f = 0; f < kNumPlanFeatures; ++f) {
      for (size_t r = 0; r < e.plans.num_observations(); ++r) {
        const double v = e.plans.values(r, f);
        ctx.min[kNumResourceFeatures + f] =
            std::min(ctx.min[kNumResourceFeatures + f], v);
        ctx.max[kNumResourceFeatures + f] =
            std::max(ctx.max[kNumResourceFeatures + f], v);
      }
    }
  }
  for (size_t f = 0; f < kNumFeatures; ++f) {
    if (ctx.min[f] > ctx.max[f]) {
      ctx.min[f] = 0.0;
      ctx.max[f] = 0.0;
    }
  }
  return ctx;
}

double NormalizeValue(const NormalizationContext& ctx, size_t feature,
                      double value) {
  WPRED_CHECK_LT(feature, kNumFeatures);
  const double range = ctx.max[feature] - ctx.min[feature];
  if (range <= 0.0) return 0.0;
  return std::clamp((value - ctx.min[feature]) / range, 0.0, 1.0);
}

Result<Representation> RepresentationByName(const std::string& name) {
  if (name == "MTS") return Representation::kMts;
  if (name == "Hist-FP") return Representation::kHistFp;
  if (name == "Phase-FP") return Representation::kPhaseFp;
  return Status::NotFound("unknown representation: " + name);
}

std::string_view RepresentationName(Representation representation) {
  switch (representation) {
    case Representation::kMts:
      return "MTS";
    case Representation::kHistFp:
      return "Hist-FP";
    case Representation::kPhaseFp:
      return "Phase-FP";
  }
  return "Unknown";
}

Result<Matrix> BuildMts(const Experiment& experiment,
                        const std::vector<size_t>& features,
                        const NormalizationContext& ctx) {
  if (features.empty()) return Status::InvalidArgument("no features selected");
  for (size_t f : features) {
    if (f >= kNumResourceFeatures) {
      return Status::InvalidArgument(
          "MTS representation only supports resource features");
    }
  }
  const size_t n = experiment.resource.num_samples();
  if (n == 0) return Status::InvalidArgument("experiment has no samples");
  Matrix out(n, features.size());
  for (size_t j = 0; j < features.size(); ++j) {
    WPRED_ASSIGN_OR_RETURN(Vector col, FeatureValues(experiment, features[j], ctx));
    out.SetCol(j, col);
  }
  return out;
}

Result<Matrix> BuildHistFp(const Experiment& experiment,
                           const std::vector<size_t>& features,
                           const NormalizationContext& ctx, int bins) {
  if (features.empty()) return Status::InvalidArgument("no features selected");
  if (bins < 2) return Status::InvalidArgument("bins must be >= 2");
  Matrix out(static_cast<size_t>(bins), features.size());
  for (size_t j = 0; j < features.size(); ++j) {
    WPRED_ASSIGN_OR_RETURN(Vector values,
                           FeatureValues(experiment, features[j], ctx));
    Vector hist(static_cast<size_t>(bins), 0.0);
    for (double v : values) {
      const int b = representation_internal::HistFpBin(v, bins);
      hist[static_cast<size_t>(b)] += 1.0 / static_cast<double>(values.size());
    }
    double cum = 0.0;
    for (int b = 0; b < bins; ++b) {
      cum += hist[static_cast<size_t>(b)];
      out(static_cast<size_t>(b), j) = cum;
    }
  }
  return out;
}

Result<Matrix> BuildPhaseFp(const Experiment& experiment,
                            const std::vector<size_t>& features,
                            const NormalizationContext& ctx, int max_phases,
                            const BcpdParams& bcpd) {
  if (features.empty()) return Status::InvalidArgument("no features selected");
  if (max_phases < 1) return Status::InvalidArgument("max_phases must be >= 1");
  constexpr int kStats = 3;  // mean, median, variance
  Matrix out(features.size(), static_cast<size_t>(max_phases * kStats));

  for (size_t j = 0; j < features.size(); ++j) {
    WPRED_ASSIGN_OR_RETURN(Vector values,
                           FeatureValues(experiment, features[j], ctx));
    std::vector<Segment> segments;
    if (features[j] < kNumResourceFeatures) {
      // BCPD phase detection on the time-series.
      WPRED_ASSIGN_OR_RETURN(std::vector<size_t> cps,
                             DetectChangePoints(values, bcpd));
      segments = SegmentsFromChangePoints(values.size(), cps);
    } else {
      // Plan features have a single phase (paper Appendix A).
      segments = {{0, values.size()}};
    }
    // Merge overflow phases into the last representable one.
    if (segments.size() > static_cast<size_t>(max_phases)) {
      segments[max_phases - 1].end = segments.back().end;
      segments.resize(static_cast<size_t>(max_phases));
    }
    for (size_t s = 0; s < segments.size(); ++s) {
      const Vector phase(values.begin() + static_cast<long>(segments[s].begin),
                         values.begin() + static_cast<long>(segments[s].end));
      out(j, s * kStats + 0) = Mean(phase);
      out(j, s * kStats + 1) = Median(phase);
      out(j, s * kStats + 2) = Variance(phase);
    }
  }
  return out;
}

Result<Matrix> BuildRepresentation(Representation representation,
                                   const Experiment& experiment,
                                   const std::vector<size_t>& features,
                                   const NormalizationContext& ctx) {
  switch (representation) {
    case Representation::kMts:
      return BuildMts(experiment, features, ctx);
    case Representation::kHistFp:
      return BuildHistFp(experiment, features, ctx);
    case Representation::kPhaseFp:
      return BuildPhaseFp(experiment, features, ctx);
  }
  return Status::InvalidArgument("unknown representation");
}

}  // namespace wpred
