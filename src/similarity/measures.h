#ifndef WPRED_SIMILARITY_MEASURES_H_
#define WPRED_SIMILARITY_MEASURES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "similarity/representation.h"
#include "telemetry/experiment.h"

namespace wpred {

/// Computes the named distance between two representation matrices.
/// Norm measures ("L1,1-Norm", "L2,1-Norm", "Fro-Norm", "Canb-Norm",
/// "Chi2-Norm", "Corr-Norm") apply to any representation with equal shapes;
/// time-series measures ("Dependent-DTW", "Independent-DTW",
/// "Dependent-LCSS", "Independent-LCSS") require MTS matrices (rows = time).
Result<double> MeasureDistance(const std::string& measure, const Matrix& a,
                               const Matrix& b);

/// Measures valid for any representation.
std::vector<std::string> NormMeasureNames();

/// Additional measures valid only for the MTS representation.
std::vector<std::string> MtsOnlyMeasureNames();

/// Pairwise distance matrix over a corpus under one representation +
/// measure + feature subset (shared normalisation computed from the corpus
/// itself). Entry (i, j) is the distance between experiments i and j.
///
/// The O(n²) cell computation runs on the shared pool (common/parallel.h)
/// with each (i, j) pair writing its own preallocated slot, so the matrix is
/// bit-identical at any thread count. `num_threads < 1` means the process
/// default (WPRED_THREADS); 1 forces the serial path.
Result<Matrix> PairwiseDistances(const ExperimentCorpus& corpus,
                                 Representation representation,
                                 const std::string& measure,
                                 const std::vector<size_t>& features,
                                 int num_threads = 0);

/// Same, but with an explicit normalisation context (e.g. shared with
/// experiments outside this corpus).
Result<Matrix> PairwiseDistancesWithContext(const ExperimentCorpus& corpus,
                                            Representation representation,
                                            const std::string& measure,
                                            const std::vector<size_t>& features,
                                            const NormalizationContext& ctx,
                                            int num_threads = 0);

}  // namespace wpred

#endif  // WPRED_SIMILARITY_MEASURES_H_
