#ifndef WPRED_SIMILARITY_SKETCH_H_
#define WPRED_SIMILARITY_SKETCH_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "similarity/sharded_corpus.h"

// Tier-0 similarity sketches (DESIGN.md §15).
//
// A per-trace sketch small enough that the whole corpus's sketches stream
// through cache, carrying enough structure to lower-bound the DTW distance
// before ANY O(m·d) work: per feature the endpoints (LB_Kim's cells), the
// value range, an equi-width histogram fingerprint over a frozen per-engine
// value frame (reusing representation_internal::HistFpBin, so the edge
// policy matches Hist-FP exactly), a precomputed table of squared gaps from
// each histogram bin to the trace's nearest occupied bin, and a PAA
// (piecewise aggregate) min/max profile per segment.
//
// The combined bound is the max of four admissible DTW lower bounds:
//
//   kim   — the first cells and (when distinct) last cells of any alignment
//           path are fixed; their cost alone bounds the total.
//   hist  — every query row is covered by >= 1 path cell, and that cell's
//           candidate value lies in SOME occupied candidate bin, so the row
//           contributes at least gap(bin(q_row), nearest occupied bin)²;
//           summing per-row guarantees gives Σ_f <q_counts_f, c_gapsq_f> —
//           two d·bins dot products per pair. Edge bins are conceptually
//           unbounded (HistFpBin clamps out-of-frame values into them), so
//           the bound survives value drift past the frozen frame.
//   paa   — same per-row argument against the candidate's PAA profile: a
//           query row in segment s aligns, under the Sakoe-Chiba band the
//           kernel will use, only to candidate rows inside a computable
//           segment range; the interval gap from the query segment's
//           [min,max] to that range's [min,max] bounds every such cell.
//   (each also evaluated with the roles of query and candidate swapped)
//
// All four bound the same path cells from below, so they max (never sum).
// The bound is used exactly like LB_Kim in the cascade — strict-inequality
// pruning against the current k-th distance — so it can discard only
// candidates whose true distance provably exceeds the cutoff and the
// engine's bit-identical-top-k contract is untouched.
//
// The value frame (per-feature min/max) is frozen when the sketch set is
// first built and reused verbatim by ExtendForAppend: appended traces are
// sketched against the ORIGINAL frame. A rebuilt engine would freeze a
// different frame and so make different pruning decisions — but pruning
// decisions never change results, so appended engines stay query-identical
// to rebuilds (pinned by SimilaritySketchTest).

namespace wpred {

/// Field offsets of one flat sketch record. A record is `stride()` doubles:
///   [0]        rows of the trace
///   [first]    d doubles  — first row's value per feature
///   [last]     d          — last row's value per feature
///   [min/max]  d each     — per-feature value range
///   [counts]   d·bins     — histogram row counts, feature-major
///   [gapsq]    d·bins     — squared value gap from bin b to the nearest
///                           occupied bin of this trace (0 if b occupied)
///   [paa_lo/paa_hi] d·segments each — per-segment min/max, feature-major
///                           (+inf/-inf for segments emptied by rows < segments)
struct SketchLayout {
  size_t features = 0;
  int bins = 0;
  int segments = 0;

  size_t first() const { return 1; }
  size_t last() const { return 1 + features; }
  size_t min() const { return 1 + 2 * features; }
  size_t max() const { return 1 + 3 * features; }
  size_t counts() const { return 1 + 4 * features; }
  size_t gapsq() const {
    return counts() + features * static_cast<size_t>(bins);
  }
  size_t paa_lo() const {
    return gapsq() + features * static_cast<size_t>(bins);
  }
  size_t paa_hi() const {
    return paa_lo() + features * static_cast<size_t>(segments);
  }
  size_t stride() const {
    return paa_hi() + features * static_cast<size_t>(segments);
  }
};

/// A tier-0 bound for one (query, candidate) pair, in distance space.
struct SketchBound {
  double combined = 0.0;  // max of all admissible components (>= kim)
  double kim = 0.0;       // the LB_Kim component alone (prune attribution)
};

/// Sketches of one corpus, stored as one contiguous record block per corpus
/// shard (global corpus indices address it, like EnvelopeSet). Built once
/// per engine; extended in place on append (single-writer, same contract as
/// EnvelopeCache::ExtendForAppend).
class TraceSketchSet {
 public:
  /// Default histogram bins per feature; segments is fixed. Eight of each
  /// keeps a record a few cache lines for typical feature counts while the
  /// hist/paa terms still resolve clusters fig05/06-style corpora separate.
  static constexpr int kDefaultBins = 8;
  static constexpr int kSegments = 8;

  TraceSketchSet() = default;

  /// True once Build succeeded; all other accessors require it.
  bool built() const { return layout_.bins > 0; }
  const SketchLayout& layout() const { return layout_; }
  int bins() const { return layout_.bins; }

  /// Freezes the per-feature value frame from `corpus` and sketches every
  /// trace (parallel over shards, slot-indexed, deterministic).
  /// `bins` must be >= 2.
  Status Build(const ShardedCorpus& corpus, int bins, int num_threads);

  /// Sketches traces [old_size, corpus.size()) against the FROZEN frame.
  /// Empty appends are a strict no-op. Single-writer; must not race reads.
  Status ExtendForAppend(const ShardedCorpus& corpus, size_t old_size,
                         int num_threads);

  /// Record of corpus trace `index` (global index).
  const double* At(size_t index) const {
    return blocks_[index / shard_traces_].data() +
           (index % shard_traces_) * layout_.stride();
  }

  /// Builds a query-side record against the frozen frame.
  std::vector<double> SketchSeries(const Matrix& series) const;

  const Vector& frame_lo() const { return lo_; }
  const Vector& frame_hi() const { return hi_; }
  size_t num_blocks() const { return blocks_.size(); }

 private:
  SketchLayout layout_;
  Vector lo_, hi_;  // frozen per-feature frame (size = features)
  size_t shard_traces_ = 1;
  std::vector<std::vector<double>> blocks_;
};

/// Tier-0 bound for dependent DTW (one alignment over all features; cell
/// cost = squared Euclidean row distance). `window` must be the window the
/// DTW kernel will run with (<= 0 unbounded); the internal band mirrors
/// DtwCore's widening to the length difference.
SketchBound DependentSketchBound(const double* q, const double* c,
                                 const SketchLayout& layout, int window);

/// Tier-0 bound for independent DTW (mean of per-feature distances); the
/// component bounds max per feature BEFORE the sqrt-mean, which is tighter
/// than maxing the totals.
SketchBound IndependentSketchBound(const double* q, const double* c,
                                   const SketchLayout& layout, int window);

namespace sketch_internal {

/// Builds one flat record for `series` against frame [lo, hi] (per-feature
/// intervals; a degenerate interval disables the hist/paa gap terms for
/// that feature — they contribute 0, which is trivially admissible).
/// Writes exactly `layout.stride()` doubles at `out`.
void BuildSketchRecord(const Matrix& series, const Vector& lo,
                       const Vector& hi, const SketchLayout& layout,
                       double* out);

}  // namespace sketch_internal

}  // namespace wpred

#endif  // WPRED_SIMILARITY_SKETCH_H_
