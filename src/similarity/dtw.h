#ifndef WPRED_SIMILARITY_DTW_H_
#define WPRED_SIMILARITY_DTW_H_

#include "common/status.h"
#include "linalg/matrix.h"

namespace wpred {

/// Univariate Dynamic Time Warping (Sakoe-Chiba): returns the square root
/// of the minimal accumulated squared difference along a monotone alignment
/// path. `window` bounds |i − j| (Sakoe-Chiba band, widened to at least the
/// length difference so unequal-length series stay alignable); <= 0 means
/// unbounded.
Result<double> DtwDistance(const Vector& a, const Vector& b, int window = 0);

/// Dependent multivariate DTW (Shokoohi-Yekta et al.): one alignment over
/// all dimensions, cell cost = squared Euclidean distance between the
/// multivariate samples. Rows are time steps, columns features; the two
/// series may have different lengths but must share the feature count.
Result<double> DependentDtwDistance(const Matrix& a, const Matrix& b,
                                    int window = 0);

/// Independent multivariate DTW: mean of univariate DTW distances per
/// dimension (each dimension aligns on its own). Averaging matches
/// IndependentLcssDistance so both "Independent" measures are invariant to
/// the size of the selected-feature set.
Result<double> IndependentDtwDistance(const Matrix& a, const Matrix& b,
                                      int window = 0);

}  // namespace wpred

#endif  // WPRED_SIMILARITY_DTW_H_
