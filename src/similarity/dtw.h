#ifndef WPRED_SIMILARITY_DTW_H_
#define WPRED_SIMILARITY_DTW_H_

#include "common/status.h"
#include "linalg/matrix.h"

namespace wpred {

/// Univariate Dynamic Time Warping (Sakoe-Chiba): returns the square root
/// of the minimal accumulated squared difference along a monotone alignment
/// path. `window` bounds |i − j| (Sakoe-Chiba band, widened to at least the
/// length difference so unequal-length series stay alignable); <= 0 means
/// unbounded. Non-finite inputs are rejected with InvalidArgument in every
/// build type (release builds used to propagate NaN silently).
Result<double> DtwDistance(const Vector& a, const Vector& b, int window = 0);

/// Dependent multivariate DTW (Shokoohi-Yekta et al.): one alignment over
/// all dimensions, cell cost = squared Euclidean distance between the
/// multivariate samples. Rows are time steps, columns features; the two
/// series may have different lengths but must share the feature count.
Result<double> DependentDtwDistance(const Matrix& a, const Matrix& b,
                                    int window = 0);

/// Independent multivariate DTW: mean of univariate DTW distances per
/// dimension (each dimension aligns on its own). Averaging matches
/// IndependentLcssDistance so both "Independent" measures are invariant to
/// the size of the selected-feature set.
Result<double> IndependentDtwDistance(const Matrix& a, const Matrix& b,
                                      int window = 0);

/// Outcome of a cutoff-threaded DTW evaluation (the early-abandoning core
/// behind the pruned similarity search in similarity/query.h).
///
/// When `abandoned` is false, `distance` is the exact DTW distance —
/// bit-identical to the plain kernel, because the cutoff only decides when
/// to stop, never how cells are computed. When `abandoned` is true the
/// kernel proved distance >= cutoff after some prefix of rows and skipped
/// the rest of the lattice; `distance` is then a lower bound, not the true
/// value, and must only be used to discard the candidate.
struct DtwEarlyAbandon {
  double distance = 0.0;
  bool abandoned = false;
};

/// DtwDistance with a best-so-far cutoff: once every cell of a lattice row
/// is >= cutoff² no alignment can finish below `cutoff` (cell costs are
/// nonnegative), so the remaining rows are abandoned. `cutoff` = +inf never
/// abandons and reproduces DtwDistance exactly.
Result<DtwEarlyAbandon> DtwDistanceEarlyAbandon(const Vector& a,
                                                const Vector& b, int window,
                                                double cutoff);

/// Early-abandoning DependentDtwDistance (same contract).
Result<DtwEarlyAbandon> DependentDtwDistanceEarlyAbandon(const Matrix& a,
                                                         const Matrix& b,
                                                         int window,
                                                         double cutoff);

/// Early-abandoning IndependentDtwDistance: per-feature kernels are chained
/// so that once the partial sum of per-feature distances alone forces the
/// mean over all features to reach `cutoff`, the remaining features are
/// skipped.
Result<DtwEarlyAbandon> IndependentDtwDistanceEarlyAbandon(const Matrix& a,
                                                           const Matrix& b,
                                                           int window,
                                                           double cutoff);

// --- Column-major span kernels (DESIGN.md §15) ---
//
// The contiguous-span entry points behind the Matrix/Vector wrappers
// above. The similarity engine calls these directly against the sharded
// corpus's column-major mirror (ShardedCorpus::col_data), so the hot loop
// never copies a column per (candidate, feature) pair. The band recurrence
// is restructured for vectorization when common/simd is enabled — cost-row
// precompute, an elementwise pairwise-min pass, then the single
// loop-carried chain — and stays bit-identical to the sequential per-cell
// loop in either mode (min is exact; cell costs keep the same per-feature
// accumulation order). Inputs must be finite: the public wrappers
// validate, the engine validates at Build/RankNeighbors.

/// Univariate DTW over two contiguous spans (same contract as
/// DtwDistanceEarlyAbandon).
Result<DtwEarlyAbandon> DtwSpanEarlyAbandon(const double* a, size_t m,
                                            const double* b, size_t n,
                                            int window, double cutoff);

/// Dependent multivariate DTW over column-major spans: `a` is `features`
/// columns of `m` doubles (column f at a + f·m), likewise `b` with `n`.
Result<DtwEarlyAbandon> DependentDtwColsEarlyAbandon(const double* a,
                                                     size_t m,
                                                     const double* b,
                                                     size_t n,
                                                     size_t features,
                                                     int window,
                                                     double cutoff);

/// Independent multivariate DTW over column-major spans, with the same
/// chained per-feature cutoff as IndependentDtwDistanceEarlyAbandon.
Result<DtwEarlyAbandon> IndependentDtwColsEarlyAbandon(const double* a,
                                                       size_t m,
                                                       const double* b,
                                                       size_t n,
                                                       size_t features,
                                                       int window,
                                                       double cutoff);

}  // namespace wpred

#endif  // WPRED_SIMILARITY_DTW_H_
