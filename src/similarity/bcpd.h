#ifndef WPRED_SIMILARITY_BCPD_H_
#define WPRED_SIMILARITY_BCPD_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace wpred {

/// Bayesian online change-point detection parameters (Adams & MacKay 2007)
/// with a Normal-Gamma conjugate prior, i.e. a Student-t posterior
/// predictive.
struct BcpdParams {
  /// Expected run length between change points (hazard = 1/lambda).
  double hazard_lambda = 100.0;
  /// Normal-Gamma prior hyper-parameters.
  double mu0 = 0.0;
  double kappa0 = 1.0;
  double alpha0 = 1.0;
  double beta0 = 0.05;
  /// Run-length probabilities below this are pruned (speed).
  double prune_threshold = 1e-6;
};

/// Detects change points in a univariate series. Returns the sorted indices
/// where new segments begin (excluding index 0). Detection follows the MAP
/// run length: when it collapses, a change point is recorded at the
/// collapse target.
Result<std::vector<size_t>> DetectChangePoints(const Vector& series,
                                               const BcpdParams& params = {});

/// Splits [0, n) into segments delimited by change points.
struct Segment {
  size_t begin;  // inclusive
  size_t end;    // exclusive
};
std::vector<Segment> SegmentsFromChangePoints(
    size_t n, const std::vector<size_t>& change_points);

}  // namespace wpred

#endif  // WPRED_SIMILARITY_BCPD_H_
