#ifndef WPRED_SIMILARITY_BCPD_H_
#define WPRED_SIMILARITY_BCPD_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace wpred {

/// Bayesian online change-point detection parameters (Adams & MacKay 2007)
/// with a Normal-Gamma conjugate prior, i.e. a Student-t posterior
/// predictive.
struct BcpdParams {
  /// Expected run length between change points (hazard = 1/lambda).
  double hazard_lambda = 100.0;
  /// Normal-Gamma prior hyper-parameters.
  double mu0 = 0.0;
  double kappa0 = 1.0;
  double alpha0 = 1.0;
  double beta0 = 0.05;
  /// Run-length probabilities below this are pruned (speed).
  double prune_threshold = 1e-6;
};

/// The online form of the detector: feed samples one at a time, get a
/// change point back the moment the MAP run length collapses. This is the
/// primitive the streaming ingestion layer runs per selected feature;
/// DetectChangePoints is implemented on top of it, so the online and batch
/// paths produce bit-identical change points by construction.
///
/// State is O(active run lengths) — bounded by the prune threshold, not by
/// the stream length — and each Observe costs O(active run lengths).
class OnlineBcpdDetector {
 public:
  /// Validates params (hazard_lambda must exceed 1).
  static Result<OnlineBcpdDetector> Create(const BcpdParams& params = {});

  /// Feeds the sample at index samples_seen(). Returns the index where a
  /// new segment begins when a collapse of the MAP run length signals a
  /// change point, otherwise nullopt. Returned indices are always > 0 and
  /// <= samples_seen() (after the increment); an index equal to the number
  /// of samples seen means the new regime starts at the next sample — batch
  /// callers with a known series length n drop change points >= n, and
  /// SegmentsFromChangePoints does the same, so a boundary collapse never
  /// yields an empty trailing segment. The same index is never returned
  /// twice in a row.
  std::optional<size_t> Observe(double x);

  /// Samples fed so far.
  size_t samples_seen() const { return t_; }
  /// MAP run length after the most recent Observe (0 before any sample).
  size_t map_run_length() const { return prev_map_run_; }

  /// Drops all posterior state, as if freshly created. samples_seen()
  /// restarts at zero; the caller owns any index re-basing.
  void Reset();

 private:
  explicit OnlineBcpdDetector(const BcpdParams& params);

  BcpdParams params_;
  double hazard_ = 0.0;
  // Run-length state: probability plus Normal-Gamma posterior per run.
  std::vector<double> run_p_;
  std::vector<double> mu_;
  std::vector<double> kappa_;
  std::vector<double> alpha_;
  std::vector<double> beta_;
  size_t t_ = 0;
  size_t prev_map_run_ = 0;
  std::optional<size_t> last_emitted_;
};

/// Detects change points in a univariate series. Returns the sorted indices
/// where new segments begin (excluding index 0). Detection follows the MAP
/// run length: when it collapses, a change point is recorded at the
/// collapse target. Runs OnlineBcpdDetector over the series, keeping only
/// change points inside (0, n).
Result<std::vector<size_t>> DetectChangePoints(const Vector& series,
                                               const BcpdParams& params = {});

/// Splits [0, n) into segments delimited by change points.
struct Segment {
  size_t begin;  // inclusive
  size_t end;    // exclusive
};
std::vector<Segment> SegmentsFromChangePoints(
    size_t n, const std::vector<size_t>& change_points);

}  // namespace wpred

#endif  // WPRED_SIMILARITY_BCPD_H_
