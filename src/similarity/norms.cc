#include "similarity/norms.h"

#include <cmath>

#include "linalg/stats.h"

namespace wpred {
namespace {

Status CheckSameShape(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return Status::InvalidArgument("matrix shape mismatch");
  }
  if (a.empty()) return Status::InvalidArgument("empty matrices");
  // Normalised representations must be finite; NaN here poisons a whole
  // pairwise-distance row while comparing equal, so catch it at the door.
  WPRED_DCHECK(AllFinite(a)) << "non-finite lhs in distance kernel";
  WPRED_DCHECK(AllFinite(b)) << "non-finite rhs in distance kernel";
  return Status::OK();
}

}  // namespace

Result<double> L11Distance(const Matrix& a, const Matrix& b) {
  WPRED_RETURN_IF_ERROR(CheckSameShape(a, b));
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc += std::fabs(a.data()[i] - b.data()[i]);
  }
  return acc;
}

Result<double> L21Distance(const Matrix& a, const Matrix& b) {
  WPRED_RETURN_IF_ERROR(CheckSameShape(a, b));
  double acc = 0.0;
  for (size_t c = 0; c < a.cols(); ++c) {
    double col = 0.0;
    for (size_t r = 0; r < a.rows(); ++r) {
      const double d = a(r, c) - b(r, c);
      col += d * d;
    }
    acc += std::sqrt(col);
  }
  return acc;
}

Result<double> FrobeniusDistance(const Matrix& a, const Matrix& b) {
  WPRED_RETURN_IF_ERROR(CheckSameShape(a, b));
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a.data()[i] - b.data()[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

Result<double> CanberraDistance(const Matrix& a, const Matrix& b) {
  WPRED_RETURN_IF_ERROR(CheckSameShape(a, b));
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double denom = std::fabs(a.data()[i]) + std::fabs(b.data()[i]);
    if (denom == 0.0) continue;
    acc += std::fabs(a.data()[i] - b.data()[i]) / denom;
  }
  return acc;
}

Result<double> Chi2Distance(const Matrix& a, const Matrix& b) {
  WPRED_RETURN_IF_ERROR(CheckSameShape(a, b));
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double sum = a.data()[i] + b.data()[i];
    if (sum == 0.0) continue;
    const double d = a.data()[i] - b.data()[i];
    acc += d * d / sum;
  }
  return 0.5 * acc;
}

Result<double> CorrelationDistance(const Matrix& a, const Matrix& b) {
  WPRED_RETURN_IF_ERROR(CheckSameShape(a, b));
  return 1.0 - PearsonCorrelation(a.data(), b.data());
}

}  // namespace wpred
