#ifndef WPRED_SIMILARITY_EVAL_H_
#define WPRED_SIMILARITY_EVAL_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace wpred {

// Evaluation of similarity-computation quality (paper Section 5.2):
// reliability via 1-NN accuracy and mean average precision, discrimination
// power via NDCG with tiered relevance.

/// Fraction of experiments whose nearest neighbour (excluding self) shares
/// their label. `distances` is a symmetric n×n matrix.
Result<double> OneNnAccuracy(const Matrix& distances,
                             const std::vector<int>& labels);

/// 1-NN accuracy where candidates sharing the query's `block` id are
/// excluded (e.g. sub-experiments of the same run, which are near-duplicates
/// and would make retrieval trivial): the nearest *different-run* neighbour
/// must share the workload label. Queries whose every candidate is blocked
/// are skipped.
Result<double> OneNnAccuracy(const Matrix& distances,
                             const std::vector<int>& labels,
                             const std::vector<int>& blocks);

/// Mean average precision: per query, rank all other experiments by
/// ascending distance; relevant = same label; AP averages precision at each
/// relevant position; mAP averages over queries with >= 1 relevant item.
Result<double> MeanAveragePrecision(const Matrix& distances,
                                    const std::vector<int>& labels);

/// Normalised discounted cumulative gain with tiered relevance: 2 for the
/// same workload, 1 for the same workload type, 0 otherwise (the paper's
/// identical / similar / different expert tiers). Averaged over queries.
Result<double> Ndcg(const Matrix& distances, const std::vector<int>& labels,
                    const std::vector<int>& type_labels);

}  // namespace wpred

#endif  // WPRED_SIMILARITY_EVAL_H_
