#ifndef WPRED_SIMILARITY_NORMS_H_
#define WPRED_SIMILARITY_NORMS_H_

#include "common/status.h"
#include "linalg/matrix.h"

namespace wpred {

// Norm-based matrix distances (paper Section 5.1.2). All operate on two
// equally shaped matrices and return a non-negative dissimilarity.

/// L1,1: Σ_ij |a_ij − b_ij| (entry-wise L1).
Result<double> L11Distance(const Matrix& a, const Matrix& b);

/// L2,1: Σ_j sqrt(Σ_i (a_ij − b_ij)²) — column-wise Euclidean norms summed.
Result<double> L21Distance(const Matrix& a, const Matrix& b);

/// Frobenius: sqrt(Σ_ij (a_ij − b_ij)²).
Result<double> FrobeniusDistance(const Matrix& a, const Matrix& b);

/// Canberra: Σ_ij |a_ij − b_ij| / (|a_ij| + |b_ij|), 0/0 terms skipped.
Result<double> CanberraDistance(const Matrix& a, const Matrix& b);

/// Chi-square: Σ_ij (a_ij − b_ij)² / (a_ij + b_ij), zero-sum terms skipped.
/// Intended for non-negative (histogram) matrices.
Result<double> Chi2Distance(const Matrix& a, const Matrix& b);

/// Correlation distance: 1 − Pearson correlation of the flattened entries
/// (2 when perfectly anti-correlated, 1 when either side is constant).
Result<double> CorrelationDistance(const Matrix& a, const Matrix& b);

}  // namespace wpred

#endif  // WPRED_SIMILARITY_NORMS_H_
