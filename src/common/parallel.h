#ifndef WPRED_COMMON_PARALLEL_H_
#define WPRED_COMMON_PARALLEL_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

// Deterministic parallel-for substrate for the similarity and ML hot paths.
//
// The contract every caller relies on: outputs are **bit-identical to the
// serial path at any thread count**. Three rules make that hold:
//   1. Static chunking — [0, n) is split into at most `num_threads`
//      contiguous chunks decided purely by (n, num_threads); no work
//      stealing, no dynamic scheduling.
//   2. Slot-indexed writes — every iteration writes only state owned by its
//      index (a preallocated matrix cell, tree slot, fold slot); reductions
//      happen after the join, in index order.
//   3. Per-index RNG — stochastic iterations derive their stream with
//      `Rng::Fork(tag)` from a tag that depends only on the index, never on
//      the executing thread or on draws made by sibling iterations.
//
// `threads <= 1` (and any nested ParallelFor) runs the loop inline on the
// calling thread and touches zero thread-pool code paths.

namespace wpred {

/// Process-wide default worker count: the WPRED_THREADS environment variable
/// when set to a positive integer, otherwise std::thread::hardware_concurrency
/// (minimum 1). Cached on first call.
int DefaultNumThreads();

/// Overrides DefaultNumThreads() for the rest of the process (tests, CLI
/// flags). `n < 1` resets to the environment-derived default.
void SetDefaultNumThreads(int n);

/// Resolves a per-call thread-count knob: values < 1 mean "use the process
/// default"; the result is always >= 1.
int ResolveNumThreads(int num_threads);

/// Lazily-created shared worker pool. Callers never use this directly —
/// ParallelFor/ParallelMap are the API — but tests assert on its counters to
/// prove the serial fallback stays off the pool entirely.
class ThreadPool {
 public:
  /// The shared pool, created on first use.
  static ThreadPool& Shared();
  /// True once Shared() has been called anywhere in the process. The serial
  /// fallback must never flip this.
  static bool SharedCreated();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Grows the worker set so at least `count` workers exist (grow-only,
  /// capped at kMaxWorkers).
  void EnsureWorkers(int count);

  /// Enqueues a task; never blocks. Tasks must not throw.
  void Submit(std::function<void()> task);

  int workers() const;
  /// Total tasks ever executed by pool workers (test observability).
  uint64_t tasks_executed() const;
  /// Total tasks ever queued via Submit (== tasks_executed once drained).
  uint64_t tasks_submitted() const;
  /// Wall seconds each worker has spent running tasks (index = worker id).
  /// Always-on: two clock reads per coarse chunk task is noise next to the
  /// chunk itself, and obs::MetricsToJson pulls these without the pool ever
  /// depending on the obs layer.
  std::vector<double> WorkerBusySeconds() const;

  static constexpr int kMaxWorkers = 64;

 private:
  ThreadPool() = default;
  void WorkerLoop(int worker_id);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool stopping_ = false;
  uint64_t tasks_executed_ = 0;
  uint64_t tasks_submitted_ = 0;
  // Fixed-capacity so worker threads accumulate without locking mu_.
  std::array<std::atomic<uint64_t>, kMaxWorkers> busy_ns_ = {};
};

namespace parallel_internal {

/// True while the current thread is executing a ParallelFor chunk (worker or
/// caller). Nested ParallelFor calls detect this and run inline.
bool InParallelRegion();

/// Outcome of parsing a WPRED_THREADS-style env value. Split out (and
/// exposed) so the rejection paths are unit-testable without mutating the
/// process environment.
struct EnvThreadsParse {
  int threads = 0;       // valid parse, clamped to [1, kMaxWorkers]; 0 = none
  bool rejected = false; // value present but garbage/non-positive/overflow
};

/// Parses an env value for a thread count. `value == nullptr` (unset) yields
/// {0, false}; a valid positive integer yields it clamped to kMaxWorkers;
/// anything else — empty, trailing garbage, zero, negative, overflow —
/// yields {0, true} so the caller can warn before falling back.
EnvThreadsParse ParseThreadsEnv(const char* value);

}  // namespace parallel_internal

/// Runs fn(i) for every i in [0, n) across at most `num_threads` statically
/// chunked workers (chunk 0 runs on the calling thread). Returns OK when all
/// iterations succeed. On failure, remaining iterations are drained (skipped,
/// never cancelled mid-call) and the error with the lowest iteration index
/// among those that ran is returned; with threads <= 1 this is exactly the
/// first error in iteration order.
///
/// `num_threads < 1` means DefaultNumThreads(). fn must confine its writes to
/// state owned by index i and must not throw.
Status ParallelFor(size_t n, int num_threads,
                   const std::function<Status(size_t)>& fn);

/// ParallelFor with the process-default thread count.
Status ParallelFor(size_t n, const std::function<Status(size_t)>& fn);

/// Maps fn : index -> Result<T> over [0, n) into a preallocated vector with
/// slot-indexed writes (ParallelFor's determinism and error semantics).
template <typename T, typename Fn>
Result<std::vector<T>> ParallelMap(size_t n, int num_threads, Fn&& fn) {
  std::vector<T> out(n);
  Status st = ParallelFor(n, num_threads, [&](size_t i) -> Status {
    WPRED_ASSIGN_OR_RETURN(out[i], fn(i));
    return Status::OK();
  });
  if (!st.ok()) return st;
  return out;
}

}  // namespace wpred

#endif  // WPRED_COMMON_PARALLEL_H_
