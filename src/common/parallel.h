#ifndef WPRED_COMMON_PARALLEL_H_
#define WPRED_COMMON_PARALLEL_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/status.h"

// Deterministic parallel-for substrate for the similarity and ML hot paths.
//
// The contract every caller relies on: outputs are **bit-identical to the
// serial path at any thread count and under any schedule**. Three rules
// make that hold:
//   1. Deterministic decomposition — [0, n) is split into contiguous chunks
//      decided purely by (n, num_threads, schedule); the *schedule* decides
//      which thread runs which chunk (and when), never what a chunk
//      computes.
//   2. Slot-indexed writes — every iteration writes only state owned by its
//      index (a preallocated matrix cell, tree slot, fold slot); reductions
//      happen after the join, in index order.
//   3. Per-index RNG — stochastic iterations derive their stream with
//      `Rng::Fork(tag)` from a tag that depends only on the index, never on
//      the executing thread or on draws made by sibling iterations.
//
// Two schedules exist behind the same API. Schedule::kStatic is the
// original one-chunk-per-worker split — lowest overhead, best when per-item
// cost is uniform. Schedule::kStealing splits the range into several small
// chunks per worker, loads each worker's deque with a contiguous block, and
// lets idle workers steal chunks from the top of busy workers' deques
// (Chase-Lev; common/work_steal_deque.h) — the right shape when per-item
// cost is wildly irregular, e.g. the early-abandoning DTW cascade where one
// candidate costs microseconds and its neighbour milliseconds. Because
// writes are slot-indexed and reductions run post-join in index order, the
// two schedules produce identical bits; they differ only in wall-clock.
//
// `threads <= 1` (and any nested ParallelFor) runs the loop inline on the
// calling thread and touches zero thread-pool code paths, under either
// schedule.

namespace wpred {

/// Process-wide default worker count: the WPRED_THREADS environment variable
/// when set to a positive integer, otherwise std::thread::hardware_concurrency
/// (minimum 1). Cached on first call.
int DefaultNumThreads();

/// Overrides DefaultNumThreads() for the rest of the process (tests, CLI
/// flags). `n < 1` resets to the environment-derived default.
void SetDefaultNumThreads(int n);

/// Resolves a per-call thread-count knob: values < 1 mean "use the process
/// default"; the result is always >= 1.
int ResolveNumThreads(int num_threads);

/// How ParallelFor distributes chunks over workers. Outputs are
/// bit-identical under every schedule (slot-indexed writes, post-join
/// reductions); the schedule only chooses wall-clock behaviour.
enum class Schedule {
  /// One contiguous chunk per worker, decided purely by (n, num_threads).
  kStatic,
  /// Chase-Lev work stealing over finer contiguous chunks: each worker owns
  /// a deque preloaded with a block of chunks; idle workers steal from the
  /// top of busy workers' deques. Wins when per-item cost is irregular.
  kStealing,
};

/// Process-wide default schedule: the WPRED_SCHEDULE environment variable
/// ("static" or "stealing", exact lowercase) when set and valid, otherwise
/// Schedule::kStatic. Cached on first call; invalid values warn once on
/// stderr and fall back to static.
Schedule DefaultSchedule();

/// Overrides DefaultSchedule() for the rest of the process (tests, CLI
/// flags, benches comparing schedules).
void SetDefaultSchedule(Schedule schedule);

/// Drops any SetDefaultSchedule override, returning to the
/// environment-derived default.
void ResetDefaultSchedule();

/// Process-lifetime work-stealing telemetry, accumulated by every
/// Schedule::kStealing ParallelFor. The obs layer exports these (common
/// never depends on obs); benches and tests read them directly.
struct StealCounters {
  /// Chunks executed by a worker other than the one whose deque held them.
  uint64_t tasks_stolen = 0;
  /// StealTop attempts that lost the top CAS to a racing pop or steal.
  uint64_t steal_failures = 0;
};
StealCounters GlobalStealCounters();

/// Lazily-created shared worker pool. Callers never use this directly —
/// ParallelFor/ParallelMap are the API — but tests assert on its counters to
/// prove the serial fallback stays off the pool entirely.
class ThreadPool {
 public:
  /// The shared pool, created on first use.
  static ThreadPool& Shared();
  /// True once Shared() has been called anywhere in the process. The serial
  /// fallback must never flip this.
  static bool SharedCreated();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Grows the worker set so at least `count` workers exist (grow-only,
  /// capped at kMaxWorkers).
  void EnsureWorkers(int count);

  /// Enqueues a task; never blocks. Tasks must not throw.
  void Submit(std::function<void()> task);

  int workers() const;
  /// Total tasks ever executed by pool workers (test observability).
  uint64_t tasks_executed() const;
  /// Total tasks ever queued via Submit (== tasks_executed once drained).
  uint64_t tasks_submitted() const;
  /// Wall seconds each worker has spent running tasks (index = worker id).
  /// Always-on: two clock reads per coarse chunk task is noise next to the
  /// chunk itself, and obs::MetricsToJson pulls these without the pool ever
  /// depending on the obs layer.
  std::vector<double> WorkerBusySeconds() const;

  static constexpr int kMaxWorkers = 64;

 private:
  ThreadPool() = default;
  void WorkerLoop(int worker_id);

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ WPRED_GUARDED_BY(mu_);
  // Grown under mu_; the destructor swaps the vector out under mu_ and joins
  // outside it (joining under the lock would deadlock against WorkerLoop).
  std::vector<std::thread> threads_ WPRED_GUARDED_BY(mu_);
  bool stopping_ WPRED_GUARDED_BY(mu_) = false;
  uint64_t tasks_executed_ WPRED_GUARDED_BY(mu_) = 0;
  uint64_t tasks_submitted_ WPRED_GUARDED_BY(mu_) = 0;
  // Fixed-capacity so worker threads accumulate without locking mu_.
  std::array<std::atomic<uint64_t>, kMaxWorkers> busy_ns_ = {};
};

namespace parallel_internal {

/// True while the current thread is executing a ParallelFor chunk (worker or
/// caller). Nested ParallelFor calls detect this and run inline.
bool InParallelRegion();

/// Outcome of parsing a WPRED_THREADS-style env value. Split out (and
/// exposed) so the rejection paths are unit-testable without mutating the
/// process environment.
struct EnvThreadsParse {
  int threads = 0;       // valid parse, clamped to [1, kMaxWorkers]; 0 = none
  bool rejected = false; // value present but garbage/non-positive/overflow
};

/// Parses an env value for a thread count. `value == nullptr` (unset) yields
/// {0, false}; a valid positive integer yields it clamped to kMaxWorkers.
/// The documented contract is a strict positive integer, so the value must
/// lead with a digit: strtol leniencies — leading whitespace, '+', "0x" —
/// are rejected, as is anything with trailing garbage, zero, or a negative.
/// Rejections yield {0, true} so the caller can warn before falling back.
/// (Values above kMaxWorkers, including strtol overflow, clamp rather than
/// reject: the intent — "many threads" — is clear.)
EnvThreadsParse ParseThreadsEnv(const char* value);

/// Outcome of parsing a WPRED_SCHEDULE env value.
struct EnvScheduleParse {
  Schedule schedule = Schedule::kStatic;
  bool present = false;   // value was set (even if rejected)
  bool rejected = false;  // present but neither "static" nor "stealing"
};

/// Strict parser for WPRED_SCHEDULE: exactly "static" or "stealing"
/// (lowercase, no surrounding whitespace). Anything else present is
/// rejected and the schedule defaults to kStatic.
EnvScheduleParse ParseScheduleEnv(const char* value);

/// One contiguous chunk of a statically-split range.
struct ChunkRange {
  size_t lo = 0;
  size_t hi = 0;  // exclusive
};

/// The c-th of `chunks` contiguous ranges covering [0, n): sizes differ by
/// at most one, concatenating all chunks in order yields exactly [0, n),
/// and — unlike the naive `c * n / chunks` split — the arithmetic cannot
/// overflow size_t for any n (the product c * n is never formed).
/// Requires chunks >= 1 and c < chunks.
ChunkRange ChunkBounds(size_t n, size_t chunks, size_t c);

}  // namespace parallel_internal

/// Runs fn(i) for every i in [0, n) across at most `num_threads` workers
/// under `schedule` (the calling thread always participates as worker 0).
/// Returns OK when all iterations succeed. On failure, remaining iterations
/// are drained (skipped, never cancelled mid-call) and the error with the
/// lowest iteration index among those that ran is returned — under either
/// schedule, because chunks are contiguous ascending ranges and outcomes
/// are scanned in chunk order; with threads <= 1 this is exactly the first
/// error in iteration order.
///
/// `num_threads < 1` means DefaultNumThreads(). fn must confine its writes
/// to state owned by index i and must not throw.
Status ParallelFor(size_t n, int num_threads, Schedule schedule,
                   const std::function<Status(size_t)>& fn);

/// ParallelFor with the process-default schedule (WPRED_SCHEDULE).
Status ParallelFor(size_t n, int num_threads,
                   const std::function<Status(size_t)>& fn);

/// ParallelFor with the process-default thread count and schedule.
Status ParallelFor(size_t n, const std::function<Status(size_t)>& fn);

/// Maps fn : index -> Result<T> over [0, n) into a preallocated vector with
/// slot-indexed writes (ParallelFor's determinism and error semantics).
template <typename T, typename Fn>
Result<std::vector<T>> ParallelMap(size_t n, int num_threads,
                                   Schedule schedule, Fn&& fn) {
  std::vector<T> out(n);
  Status st = ParallelFor(n, num_threads, schedule, [&](size_t i) -> Status {
    WPRED_ASSIGN_OR_RETURN(out[i], fn(i));
    return Status::OK();
  });
  if (!st.ok()) return st;
  return out;
}

/// ParallelMap with the process-default schedule.
template <typename T, typename Fn>
Result<std::vector<T>> ParallelMap(size_t n, int num_threads, Fn&& fn) {
  return ParallelMap<T>(n, num_threads, DefaultSchedule(),
                        std::forward<Fn>(fn));
}

}  // namespace wpred

#endif  // WPRED_COMMON_PARALLEL_H_
