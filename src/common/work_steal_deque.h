#ifndef WPRED_COMMON_WORK_STEAL_DEQUE_H_
#define WPRED_COMMON_WORK_STEAL_DEQUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/annotations.h"
#include "common/check.h"

// Chase-Lev-style bounded work-stealing deque of chunk ids, the scheduling
// core behind ParallelFor's Schedule::kStealing mode (common/parallel.h).
//
// One owner thread pushes and pops at the bottom (LIFO for the owner, so a
// worker walks its own chunk block in the order it was loaded); any number
// of thief threads steal from the top (FIFO for thieves, so theft takes the
// chunks the owner would reach last). Every pushed item is handed to exactly
// one PopBottom or StealTop call — the exactly-once property ParallelFor's
// outcome slots rely on.
//
// This header is an implementation detail of common/parallel: nothing else
// in src/, tools/, or bench/ may include it or touch WorkStealDeque (the
// `steal-deque` lint rule enforces that); tests exercise it directly for
// torn-state coverage.
//
// Memory-model notes: the classic formulation (Chase & Lev 2005; Le et al.
// 2013) uses standalone fences on the pop/steal fast paths. ThreadSanitizer
// does not model standalone fences, so this implementation pins the
// synchronizing loads/stores/CAS on `top_`/`bottom_` to seq_cst instead and
// keeps the cells themselves atomic (relaxed) to rule out torn reads while
// a thief races the owner. The deque moves whole chunks — thousands of
// iterations each — so the stronger ordering is noise next to the chunk
// bodies.

namespace wpred {

class WorkStealDeque {
 public:
  /// Outcome of a StealTop attempt. kLost (a racing pop/steal won the CAS)
  /// is worth distinguishing from kEmpty: the caller should retry a kLost
  /// victim, move on from a kEmpty one, and count kLost as a steal failure.
  enum class Steal { kStolen, kEmpty, kLost };

  /// Fixed capacity, rounded up to a power of two (minimum 1). The deque
  /// never grows: ParallelFor sizes each worker's deque to its chunk block
  /// before any thief starts.
  explicit WorkStealDeque(size_t capacity) {
    size_t rounded = 1;
    while (rounded < capacity) rounded <<= 1;
    cells_ = std::vector<std::atomic<size_t>>(rounded);
    mask_ = rounded - 1;
  }

  WorkStealDeque(const WorkStealDeque&) = delete;
  WorkStealDeque& operator=(const WorkStealDeque&) = delete;

  /// Owner only. False when the deque is full (capacity items in flight).
  bool PushBottom(size_t item) {
    // wpred-lint: allow(atomics-order): bottom_ is written by the owner
    // thread alone, so the owner's own load of it needs no ordering.
    const int64_t b = bottom_.load(std::memory_order_relaxed);
    const int64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= static_cast<int64_t>(mask_ + 1)) return false;
    // wpred-lint: allow(atomics-order): the cell is handed off by the
    // seq_cst store to bottom_ below (and claimed through the seq_cst CAS
    // on top_); the cell itself is atomic only to rule out torn reads.
    cells_[static_cast<size_t>(b) & mask_].store(item,
                                                 std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return true;
  }

  /// Owner only. False when the deque is empty (including losing the
  /// last-item race to a thief).
  bool PopBottom(size_t* item) {
    WPRED_DCHECK(item != nullptr);
    // wpred-lint: allow(atomics-order): owner-only load of bottom_ (see
    // PushBottom); the seq_cst store on the next line is the ordering point.
    const int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
      // wpred-lint: allow(atomics-order): restores the owner's own
      // decrement on the empty path; thieves never read past top_, which
      // this store does not move.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    // wpred-lint: allow(atomics-order): cell reads are ordered by the
    // seq_cst load of top_ above; atomic only against torn reads.
    const size_t value =
        cells_[static_cast<size_t>(b) & mask_].load(std::memory_order_relaxed);
    if (t == b) {
      // Last item: the owner must win the same CAS a thief would, or the
      // thief owns the item.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_seq_cst);
      // wpred-lint: allow(atomics-order): same owner-only restore as the
      // empty path; ownership of the last item was decided by the CAS.
      bottom_.store(b + 1, std::memory_order_relaxed);
      if (!won) return false;
    }
    *item = value;
    return true;
  }

  /// Any thread. The CAS on `top_` decides ownership; reading the cell
  /// before the CAS is safe because PushBottom never reuses a slot while
  /// fewer than `capacity` items separate bottom from top.
  Steal StealTop(size_t* item) {
    WPRED_DCHECK(item != nullptr);
    int64_t t = top_.load(std::memory_order_seq_cst);
    const int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return Steal::kEmpty;
    // wpred-lint: allow(atomics-order): ordered by the seq_cst top_/bottom_
    // loads above and validated by the seq_cst CAS below (Chase-Lev).
    const size_t value =
        cells_[static_cast<size_t>(t) & mask_].load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_seq_cst)) {
      return Steal::kLost;
    }
    *item = value;
    return Steal::kStolen;
  }

  /// Racy by nature (another thread may push or steal immediately after);
  /// use only as a heuristic or from quiescent states.
  bool Empty() const {
    return top_.load(std::memory_order_seq_cst) >=
           bottom_.load(std::memory_order_seq_cst);
  }

  size_t capacity() const { return mask_ + 1; }

 private:
  // All three atomics publish hand-off state between owner and thieves;
  // the relaxed operations above are each justified line-by-line. The
  // atomics-order pass flags any new relaxed access without a rationale.
  std::vector<std::atomic<size_t>> cells_ WPRED_ATOMIC_PUBLISHED;
  size_t mask_ = 0;
  std::atomic<int64_t> top_ WPRED_ATOMIC_PUBLISHED{0};
  std::atomic<int64_t> bottom_ WPRED_ATOMIC_PUBLISHED{0};
};

}  // namespace wpred

#endif  // WPRED_COMMON_WORK_STEAL_DEQUE_H_
