#include "common/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace wpred {
namespace simd {

namespace simd_internal {

EnvSimdParse ParseSimdEnv(const char* value) {
  EnvSimdParse parsed;
  if (value == nullptr) return parsed;
  parsed.present = true;
  const std::string v(value);
  if (v == "on") {
    parsed.enabled = true;
  } else if (v == "off") {
    parsed.enabled = false;
  } else {
    parsed.rejected = true;
  }
  return parsed;
}

}  // namespace simd_internal

namespace {

// -1 = no override; 0/1 = forced off/on (tests and A/B benches).
std::atomic<int> g_simd_override{-1};

bool EnvDefaultEnabled() {
  const char* env = std::getenv("WPRED_SIMD");
  const auto parsed = simd_internal::ParseSimdEnv(env);
  if (parsed.rejected) {
    std::fprintf(stderr,
                 "wpred: ignoring invalid WPRED_SIMD=\"%s\" (want \"on\" or "
                 "\"off\"); using on\n",
                 env);
  }
  return parsed.enabled;
}

}  // namespace

bool Enabled() {
  const int override = g_simd_override.load(std::memory_order_relaxed);
  if (override >= 0) return override != 0;
  static const bool env_default = EnvDefaultEnabled();
  return env_default;
}

void SetEnabled(bool on) {
  g_simd_override.store(on ? 1 : 0, std::memory_order_relaxed);
}

void ResetEnabled() { g_simd_override.store(-1, std::memory_order_relaxed); }

}  // namespace simd
}  // namespace wpred
