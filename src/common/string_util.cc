#include "common/string_util.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace wpred {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string ToFixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatCompact(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  const double mag = std::fabs(value);
  char buf[64];
  if (mag != 0.0 && (mag >= 1e7 || mag < 1e-4)) {
    std::snprintf(buf, sizeof(buf), "%.3e", value);
  } else if (mag >= 100.0 || value == std::floor(value)) {
    std::snprintf(buf, sizeof(buf), "%.1f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4f", value);
  }
  return buf;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

}  // namespace wpred
