#include "common/table_printer.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace wpred {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  WPRED_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  WPRED_CHECK_EQ(row.size(), header_.size())
      << "row arity does not match header";
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

void TablePrinter::Print(std::ostream& os) const { os << ToString(); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_rule = [&]() {
    std::string line = "+";
    for (size_t w : widths) {
      line += std::string(w + 2, '-');
      line += "+";
    }
    line += "\n";
    return line;
  };
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    line += "\n";
    return line;
  };

  std::ostringstream out;
  out << render_rule() << render_row(header_) << render_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      out << render_rule();
    } else {
      out << render_row(row);
    }
  }
  out << render_rule();
  return out.str();
}

}  // namespace wpred
