#ifndef WPRED_COMMON_ANNOTATIONS_H_
#define WPRED_COMMON_ANNOTATIONS_H_

// Thread-safety annotations (DESIGN.md §14).
//
// Under Clang these expand to the thread-safety-analysis attributes, so a
// `-Wthread-safety` build statically checks that every access to an
// annotated field happens with the named mutex held. Under every other
// compiler they expand to nothing. Two consumers read them:
//
//   1. Clang's analysis (`-Werror=thread-safety-analysis` in the clang CI
//      job) — alias-aware, flow-sensitive, the real thing.
//   2. wpred_lint's `guarded-field` pass — a token-level tracker that runs
//      on every build (gcc included) and in CI before any compile. Weaker
//      than Clang's analysis (no aliasing, block-scope lock tracking only)
//      but it keeps the annotations honest everywhere.
//
// Annotation placement follows the Clang/Abseil convention: field
// annotations trail the declarator (`int x_ WPRED_GUARDED_BY(mu_);`),
// function annotations trail the signature
// (`void f() WPRED_REQUIRES(mu_);`).
//
// WPRED_ATOMIC_PUBLISHED is NOT a Clang attribute: it marks a std::atomic
// whose stores *publish* data other threads will read through it (a
// released pointer, a left-right selector, a Chase-Lev index). The
// `atomics-order` lint pass flags any memory_order_relaxed operation on a
// field so marked — relaxed ordering on a publication atomic is almost
// always a bug — unless the line carries a
// `wpred-lint: allow(atomics-order): <rationale>` suppression explaining
// why the relaxed access is sound (e.g. an owner-thread-only load).

#if defined(__clang__) && !defined(SWIG)
#define WPRED_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define WPRED_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Declares a class to be a capability (lockable) type. The string names
/// the capability kind in diagnostics ("mutex").
#define WPRED_CAPABILITY(x) WPRED_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class whose constructor acquires and destructor
/// releases a capability (MutexLock).
#define WPRED_SCOPED_CAPABILITY WPRED_THREAD_ANNOTATION_(scoped_lockable)

/// Field may only be read or written while holding `x`.
#define WPRED_GUARDED_BY(x) WPRED_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer field whose *pointee* is guarded by `x` (the pointer itself may
/// be read freely).
#define WPRED_PT_GUARDED_BY(x) WPRED_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Caller must hold the named mutex(es) when invoking the function.
#define WPRED_REQUIRES(...) \
  WPRED_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function acquires the mutex(es) and holds them on return.
#define WPRED_ACQUIRE(...) \
  WPRED_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the mutex(es); they must be held on entry.
#define WPRED_RELEASE(...) \
  WPRED_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function acquires the mutex iff it returns `result`.
#define WPRED_TRY_ACQUIRE(...) \
  WPRED_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the named mutex(es) (deadlock prevention).
#define WPRED_EXCLUDES(...) \
  WPRED_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Escape hatch: the function is exempt from analysis. Every use needs a
/// comment saying why the checker cannot follow the code (and why a human
/// believes it anyway).
#define WPRED_NO_THREAD_SAFETY_ANALYSIS \
  WPRED_THREAD_ANNOTATION_(no_thread_safety_analysis)

/// Lint-only marker (expands to nothing everywhere): this std::atomic
/// publishes data — release/acquire (or seq_cst) ordering is part of its
/// correctness, so the `atomics-order` pass flags relaxed operations on it
/// unless suppressed with a rationale.
#define WPRED_ATOMIC_PUBLISHED

#endif  // WPRED_COMMON_ANNOTATIONS_H_
