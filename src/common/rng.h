#ifndef WPRED_COMMON_RNG_H_
#define WPRED_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace wpred {

/// Deterministic random number generator used throughout wpred.
///
/// Every stochastic component (the simulator, model initialisation, bagging,
/// cross-validation shuffles, ...) draws from an Rng seeded by its caller, so
/// experiments, tests, and benches are reproducible run-to-run. `Fork(tag)`
/// derives an independent stream, which keeps components decoupled: inserting
/// an extra draw in one component does not perturb another.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Derives a deterministic child stream from this generator's seed and a
  /// caller-chosen tag (SplitMix64-style mixing).
  Rng Fork(uint64_t tag) const;

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean = 0.0, double stddev = 1.0);

  /// Exponential with the given mean (not rate). mean > 0.
  double Exponential(double mean);

  /// Poisson-distributed count with the given mean >= 0.
  int64_t Poisson(double mean);

  /// Bernoulli trial with success probability p in [0, 1].
  bool Bernoulli(double p);

  /// Zipf-distributed rank in [0, n) with skew parameter s (s = 0 is uniform;
  /// larger s concentrates mass on low ranks). Uses the rejection-inversion
  /// free CDF-table-less approximation adequate for n up to ~1e6.
  int64_t Zipf(int64_t n, double s);

  /// Lognormal sample where the *resulting distribution* has the given
  /// median and a multiplicative spread sigma (sigma of underlying normal).
  double LogNormalMedian(double median, double sigma);

  /// Fisher-Yates shuffle of indices [0, n).
  std::vector<size_t> Permutation(size_t n);

  uint64_t seed() const { return seed_; }
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  uint64_t seed_;
};

}  // namespace wpred

#endif  // WPRED_COMMON_RNG_H_
