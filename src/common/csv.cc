#include "common/csv.h"

#include <fstream>

#include "common/check.h"

namespace wpred {
namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string RenderRow(const std::vector<std::string>& row) {
  std::string line;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) line += ',';
    line += QuoteField(row[i]);
  }
  line += '\n';
  return line;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  WPRED_CHECK(!header_.empty());
}

void CsvWriter::AddRow(std::vector<std::string> row) {
  WPRED_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string CsvWriter::ToString() const {
  std::string out = RenderRow(header_);
  for (const auto& row : rows_) out += RenderRow(row);
  return out;
}

Status CsvWriter::WriteFile(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot open for writing: " + path);
  file << ToString();
  if (!file) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;
  // Skip a UTF-8 byte-order mark so spreadsheet-exported telemetry does not
  // smuggle \xEF\xBB\xBF into the first header cell.
  const size_t start =
      text.size() >= 3 && text.compare(0, 3, "\xEF\xBB\xBF") == 0 ? 3 : 0;
  for (size_t i = start; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        row.push_back(std::move(field));
        field.clear();
        row_has_content = true;
        break;
      case '\n':
        if (row_has_content || !field.empty()) {
          row.push_back(std::move(field));
          field.clear();
          rows.push_back(std::move(row));
          row.clear();
          row_has_content = false;
        }
        break;
      case '\r':
        break;
      default:
        field += c;
        row_has_content = true;
        break;
    }
  }
  if (in_quotes) return Status::InvalidArgument("unterminated quoted field");
  if (row_has_content || !field.empty()) {
    row.push_back(std::move(field));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace wpred
