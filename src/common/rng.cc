#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace wpred {
namespace {

// SplitMix64 finaliser; good avalanche for deriving child seeds.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Rng Rng::Fork(uint64_t tag) const { return Rng(Mix64(seed_ ^ Mix64(tag))); }

double Rng::Uniform(double lo, double hi) {
  WPRED_CHECK_LE(lo, hi);
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  WPRED_CHECK_LE(lo, hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  WPRED_CHECK_GE(stddev, 0.0);
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double Rng::Exponential(double mean) {
  WPRED_CHECK_GT(mean, 0.0);
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

int64_t Rng::Poisson(double mean) {
  WPRED_CHECK_GE(mean, 0.0);
  if (mean == 0.0) return 0;
  std::poisson_distribution<int64_t> dist(mean);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  WPRED_CHECK_GE(p, 0.0);
  WPRED_CHECK_LE(p, 1.0);
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

int64_t Rng::Zipf(int64_t n, double s) {
  WPRED_CHECK_GT(n, 0);
  WPRED_CHECK_GE(s, 0.0);
  if (s == 0.0) return UniformInt(0, n - 1);
  // Inverse-CDF on the harmonic tail approximated in closed form
  // (integral approximation of generalized harmonic numbers). Exact enough
  // for simulation skew; avoids O(n) tables.
  const double u = Uniform(0.0, 1.0);
  if (s == 1.0) {
    const double hn = std::log(static_cast<double>(n) + 1.0);
    return static_cast<int64_t>(std::exp(u * hn)) - 1;
  }
  const double one_minus_s = 1.0 - s;
  const double hn =
      (std::pow(static_cast<double>(n) + 1.0, one_minus_s) - 1.0) / one_minus_s;
  const double x = std::pow(u * hn * one_minus_s + 1.0, 1.0 / one_minus_s) - 1.0;
  int64_t rank = static_cast<int64_t>(x);
  if (rank < 0) rank = 0;
  if (rank >= n) rank = n - 1;
  return rank;
}

double Rng::LogNormalMedian(double median, double sigma) {
  WPRED_CHECK_GT(median, 0.0);
  WPRED_CHECK_GE(sigma, 0.0);
  std::lognormal_distribution<double> dist(std::log(median), sigma);
  return dist(engine_);
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = n; i > 1; --i) {
    const size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

}  // namespace wpred
