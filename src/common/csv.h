#ifndef WPRED_COMMON_CSV_H_
#define WPRED_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace wpred {

/// Minimal CSV writer used to export bench series (e.g. for external
/// plotting). Fields containing separators/quotes/newlines are quoted.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Serialises header + rows.
  std::string ToString() const;

  /// Writes the CSV to `path`; returns IoError on failure.
  Status WriteFile(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parses CSV text (the subset CsvWriter emits). Returns rows including the
/// header row.
Result<std::vector<std::vector<std::string>>> ParseCsv(const std::string& text);

}  // namespace wpred

#endif  // WPRED_COMMON_CSV_H_
