#ifndef WPRED_COMMON_STRING_UTIL_H_
#define WPRED_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace wpred {

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Formats `value` with `digits` digits after the decimal point.
std::string ToFixed(double value, int digits);

/// Formats `value` compactly: fixed for moderate magnitudes, scientific
/// otherwise; NaN/inf rendered as "nan"/"inf".
std::string FormatCompact(double value);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Lowercases ASCII letters.
std::string ToLower(std::string_view text);

}  // namespace wpred

#endif  // WPRED_COMMON_STRING_UTIL_H_
