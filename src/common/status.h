#ifndef WPRED_COMMON_STATUS_H_
#define WPRED_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

// Arrow/RocksDB-style error model: fallible operations return Status (or
// Result<T> for value-producing operations) instead of throwing. Exceptions
// never cross wpred public API boundaries.

namespace wpred {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kNumericalError,
  kIoError,
  kUnimplemented,
  /// Transient overload/lifecycle refusal: the caller may retry later
  /// (admission-control shedding, service not yet started).
  kUnavailable,
  /// The caller's time budget elapsed before the operation completed.
  kDeadlineExceeded,
};

/// Name of a status code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: an OK singleton or a code plus message.
/// Class-level [[nodiscard]]: every function returning Status (or Result<T>
/// below) warns if the caller drops the value. Intentional discards must be
/// written as `(void)expr;  // reason` — wpred_lint's bare-discard rule
/// requires the comment.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  [[nodiscard]] static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  [[nodiscard]] static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  [[nodiscard]] static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  [[nodiscard]] static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result is a checked programmer error.
template <typename T>
class [[nodiscard]] Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirror absl::StatusOr.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    WPRED_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    WPRED_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    WPRED_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    WPRED_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace wpred

/// Propagates a non-OK Status out of the enclosing function.
#define WPRED_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::wpred::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (false)

#define WPRED_CONCAT_IMPL(a, b) a##b
#define WPRED_CONCAT(a, b) WPRED_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; on error propagates the Status,
/// otherwise moves the value into `lhs`.
#define WPRED_ASSIGN_OR_RETURN(lhs, expr)                         \
  auto WPRED_CONCAT(_result_, __LINE__) = (expr);                 \
  if (!WPRED_CONCAT(_result_, __LINE__).ok())                     \
    return WPRED_CONCAT(_result_, __LINE__).status();             \
  lhs = std::move(WPRED_CONCAT(_result_, __LINE__)).value()

#endif  // WPRED_COMMON_STATUS_H_
