#ifndef WPRED_COMMON_MUTEX_H_
#define WPRED_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/annotations.h"

// Annotated mutex primitives (DESIGN.md §14).
//
// Clang's thread-safety analysis only tracks lock acquisitions it can see:
// `std::lock_guard<std::mutex>` from libstdc++ carries no attributes, so a
// field marked WPRED_GUARDED_BY would warn at every legitimate access.
// These thin wrappers — the pattern the Clang docs and Abseil use — carry
// the attributes, cost nothing beyond the underlying std::mutex, and give
// wpred_lint's `guarded-field` pass unambiguous lock/unlock tokens to
// track.
//
//   Mutex mu_;
//   int shared_ WPRED_GUARDED_BY(mu_);
//   void Tick() { MutexLock lock(mu_); ++shared_; }
//   void TickLocked() WPRED_REQUIRES(mu_) { ++shared_; }
//
// CondVar pairs with Mutex the way std::condition_variable pairs with
// std::mutex; Wait/WaitFor are annotated WPRED_REQUIRES so waiting without
// the lock is a compile error under Clang.

namespace wpred {

/// std::mutex with acquire/release annotations. Prefer MutexLock for
/// scoped holds; explicit Lock()/Unlock() are for the rare hand-over-hand
/// or wait-loop shapes, and the analysis checks they balance on every path.
class WPRED_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() WPRED_ACQUIRE() { mu_.lock(); }
  void Unlock() WPRED_RELEASE() { mu_.unlock(); }
  bool TryLock() WPRED_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// BasicLockable interface for std waiters (CondVar below). Deliberately
  /// unannotated: these are called from inside system-header templates the
  /// analysis does not model; annotated code uses Lock()/Unlock().
  void lock() { mu_.lock(); }
  void unlock() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII scoped hold of a Mutex (Clang `scoped_lockable`).
class WPRED_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) WPRED_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() WPRED_RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over Mutex. Wait atomically releases the mutex and
/// reacquires it before returning, so from the caller's (and the
/// analysis's) point of view the mutex is held across the call.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // No predicate overload on purpose: Clang's analysis treats a lambda body
  // as a separate unannotated function, so `cv.Wait(mu, [&]{ return done_; })`
  // would warn on every guarded field the predicate reads. Write the loop
  // out instead: `while (!done_) cv_.Wait(mu_);`
  void Wait(Mutex& mu) WPRED_REQUIRES(mu) { cv_.wait(mu); }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& timeout)
      WPRED_REQUIRES(mu) {
    return cv_.wait_for(mu, timeout);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // condition_variable_any waits on any BasicLockable — our Mutex directly
  // — at the cost of one extra internal mutex next to plain
  // condition_variable. Every wait here guards queue handoff or shutdown,
  // never a per-iteration hot path, so the simplicity wins.
  std::condition_variable_any cv_;
};

}  // namespace wpred

#endif  // WPRED_COMMON_MUTEX_H_
