#ifndef WPRED_COMMON_SIMD_H_
#define WPRED_COMMON_SIMD_H_

#include <algorithm>
#include <cstddef>

// Portable SIMD layer (DESIGN.md §15).
//
// wpred's similarity hot loops (envelope build, LB_Keogh accumulation, the
// DTW band recurrence, sketch dot products) are memory-streaming kernels
// over contiguous double spans. This header gives them one vocabulary of
// fixed-width lane operations written so any modern compiler
// auto-vectorizes them — independent lane accumulators, branchless
// min/max/clamp arithmetic, unit-stride loads — with NO intrinsics and no
// ISA dependency. On a scalar-only target the same code compiles to the
// plain loop and stays correct.
//
// Two kernel classes with different bit-level contracts:
//
//  - Elementwise kernels (PairMin, accumulating a squared-difference cost
//    row): each output element is one fixed expression of its inputs, so
//    the result is bit-identical however the loop is scheduled. Exact DTW
//    distances are built only from these (plus exact min), which is why
//    the engine's top-k stays bit-identical with SIMD on or off.
//
//  - Reduction kernels (SquaredL2, Dot, EnvelopeGapSq, MinValue/MaxValue):
//    the vector path sums into kLanes independent accumulators and reduces
//    them in one fixed order, so any one mode is deterministic, but the
//    vector and scalar modes may differ in the last ulp (float addition is
//    not associative; min/max reductions ARE exact). wpred only uses these
//    for lower bounds and diagnostics — quantities whose value may change
//    pruning work but never query results.
//
// The scalar fallback is selectable at runtime (`WPRED_SIMD=off`, or
// SetEnabled(false) in tests/benches) and reproduces the pre-SIMD
// sequential loops, so A/B runs can attribute speedups to the lane
// structure alone.

namespace wpred {
namespace simd {

/// Lane count of the vectorized paths. Eight doubles: one AVX-512 register,
/// two AVX2 registers, four NEON registers — wide enough that the compiler
/// can unroll into whatever the target offers, small enough that the tail
/// loop stays negligible for wpred's typical span lengths (tens to a few
/// thousand).
inline constexpr size_t kLanes = 8;

/// Whether the vectorized paths are active (default on; `WPRED_SIMD=off`
/// or SetEnabled(false) selects the sequential reference loops). Never
/// changes query results — only which bit-identical (elementwise) or
/// last-ulp-equivalent (reduction) code path runs.
bool Enabled();

/// Process-wide override for tests and A/B benches; thread-safe, but flip
/// it only between queries — kernels sample the switch per call.
void SetEnabled(bool on);

/// Drops the SetEnabled override, returning to the WPRED_SIMD env default.
void ResetEnabled();

/// Σ (a[i] − b[i])². Reduction kernel (lane-split when enabled).
inline double SquaredL2(const double* a, const double* b, size_t n) {
  if (!Enabled()) {
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double d = a[i] - b[i];
      acc += d * d;
    }
    return acc;
  }
  double lane[kLanes] = {0.0};
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (size_t l = 0; l < kLanes; ++l) {
      const double d = a[i + l] - b[i + l];
      lane[l] += d * d;
    }
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    tail += d * d;
  }
  return (((lane[0] + lane[1]) + (lane[2] + lane[3])) +
          ((lane[4] + lane[5]) + (lane[6] + lane[7]))) +
         tail;
}

/// Σ a[i]·b[i]. Reduction kernel (lane-split when enabled).
inline double Dot(const double* a, const double* b, size_t n) {
  if (!Enabled()) {
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
    return acc;
  }
  double lane[kLanes] = {0.0};
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (size_t l = 0; l < kLanes; ++l) lane[l] += a[i + l] * b[i + l];
  }
  double tail = 0.0;
  for (; i < n; ++i) tail += a[i] * b[i];
  return (((lane[0] + lane[1]) + (lane[2] + lane[3])) +
          ((lane[4] + lane[5]) + (lane[6] + lane[7]))) +
         tail;
}

/// LB_Keogh accumulator: Σ over i of the squared distance from v[i] to the
/// interval [lo[i], hi[i]] (zero inside). Branchless — exactly one of the
/// two max() terms is nonzero per element when lo <= hi — so the compiler
/// turns the body into maxpd/fma with no unpredictable branch, unlike the
/// if/else ladder it replaces. Reduction kernel (lane-split when enabled).
inline double EnvelopeGapSq(const double* v, const double* lo,
                            const double* hi, size_t n) {
  if (!Enabled()) {
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double above = std::max(v[i] - hi[i], 0.0);
      const double below = std::max(lo[i] - v[i], 0.0);
      acc += above * above + below * below;
    }
    return acc;
  }
  double lane[kLanes] = {0.0};
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (size_t l = 0; l < kLanes; ++l) {
      const double above = std::max(v[i + l] - hi[i + l], 0.0);
      const double below = std::max(lo[i + l] - v[i + l], 0.0);
      lane[l] += above * above + below * below;
    }
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double above = std::max(v[i] - hi[i], 0.0);
    const double below = std::max(lo[i] - v[i], 0.0);
    tail += above * above + below * below;
  }
  return (((lane[0] + lane[1]) + (lane[2] + lane[3])) +
          ((lane[4] + lane[5]) + (lane[6] + lane[7]))) +
         tail;
}

/// out[i] = min(a[i], b[i]). Elementwise (bit-identical in both modes; the
/// split exists so A/B runs measure the lane path against a plain loop the
/// compiler is told not to restructure differently). `out` must not alias
/// a future read of `a`/`b` at a lower index (in-place out == a is fine).
inline void PairMin(const double* a, const double* b, double* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = std::min(a[i], b[i]);
}

/// cost[i] += (a_val − b[i])². Elementwise; the accumulation order over
/// successive calls (one per feature) is the caller's, so repeated
/// application reproduces the sequential per-cell feature sum bit-exactly.
inline void AccumulateRowCost(double a_val, const double* b, double* cost,
                              size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const double d = a_val - b[i];
    cost[i] += d * d;
  }
}

/// cost[t] += (a[t] − b_rev[−t])² — the anti-diagonal cost fill: `a` walks
/// forward while `b_rev` walks BACKWARD from its start, which is how cell
/// (i, j) coordinates move along a DTW anti-diagonal (i+j constant).
/// Elementwise; compilers vectorize the reversed stream with permuted
/// loads. Same per-call accumulation-order contract as AccumulateRowCost.
inline void AccumulateAntiDiagCost(const double* a, const double* b_rev,
                                   double* cost, size_t n) {
  for (size_t t = 0; t < n; ++t) {
    const double d = a[t] - b_rev[-static_cast<ptrdiff_t>(t)];
    cost[t] += d * d;
  }
}

/// out[t] = cost[t] + min(left[t], min(up[t], diag[t])) — the DTW wavefront
/// relax: every cell on an anti-diagonal depends only on the two previous
/// diagonals, so the whole span is one independent elementwise pass (this
/// is what removes the row recurrence's serial min chain). min is exact and
/// the grouping matches the sequential three-way min, so each cell's value
/// is bit-identical to the row-order reference whatever the lane schedule.
inline void RelaxAntiDiag(const double* cost, const double* left,
                          const double* up, const double* diag, double* out,
                          size_t n) {
  for (size_t t = 0; t < n; ++t) {
    out[t] = cost[t] + std::min(left[t], std::min(up[t], diag[t]));
  }
}

/// min / max over a span. Exact reductions (min/max lose nothing to
/// reassociation), so both modes agree bitwise.
inline double MinValue(const double* a, size_t n) {
  double m = a[0];
  for (size_t i = 1; i < n; ++i) m = std::min(m, a[i]);
  return m;
}
inline double MaxValue(const double* a, size_t n) {
  double m = a[0];
  for (size_t i = 1; i < n; ++i) m = std::max(m, a[i]);
  return m;
}

namespace simd_internal {

/// Outcome of parsing a WPRED_SIMD env value. Exposed so the rejection
/// paths are unit-testable without mutating the process environment
/// (mirrors parallel_internal::ParseScheduleEnv).
struct EnvSimdParse {
  bool enabled = true;    // the default: vector paths on
  bool present = false;   // value was set (even if rejected)
  bool rejected = false;  // present but neither "on" nor "off"
};

/// Strict parser for WPRED_SIMD: exactly "on" or "off" (lowercase, no
/// surrounding whitespace). Anything else present is rejected with a
/// stderr warning at first use and the default (on) applies.
EnvSimdParse ParseSimdEnv(const char* value);

}  // namespace simd_internal

}  // namespace simd
}  // namespace wpred

#endif  // WPRED_COMMON_SIMD_H_
