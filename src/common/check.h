#ifndef WPRED_COMMON_CHECK_H_
#define WPRED_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

// Invariant-checking macros in the spirit of glog's CHECK family.
//
// These are for *programmer errors* (violated preconditions, broken
// invariants): they abort the process with a diagnostic. Recoverable errors
// (bad user input, numerical failures on degenerate data) must instead be
// reported through Status / Result<T>; see common/status.h.
//
// Two tiers:
//
//   WPRED_CHECK*  — always on, in every build type. Use at API boundaries
//                   and for cheap checks whose failure would corrupt state.
//   WPRED_DCHECK* — debug contracts. On when NDEBUG is not defined (Debug
//                   builds) or when WPRED_FORCE_DCHECKS is defined (the
//                   sanitizer CI forces them on in optimised builds); in
//                   plain Release they compile to nothing — the condition is
//                   type-checked but never evaluated, so hot numeric loops
//                   pay zero cost. Use for per-element preconditions (shape
//                   agreement, index bounds, finiteness) inside kernels.
//
// The decision table (DCHECK vs CHECK vs Status) lives in DESIGN.md §9.

namespace wpred::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition,
                                     const std::string& message) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, condition,
               message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

// Builds the optional streamed message for WPRED_CHECK(cond) << "context".
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* condition)
      : file_(file), line_(line), condition_(condition) {}

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, condition_, stream_.str());
  }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* condition_;
  std::ostringstream stream_;
};

}  // namespace wpred::internal

#define WPRED_CHECK(condition)                                       \
  while (!(condition))                                               \
  ::wpred::internal::CheckMessageBuilder(__FILE__, __LINE__, #condition)

#define WPRED_CHECK_EQ(a, b) WPRED_CHECK((a) == (b))
#define WPRED_CHECK_NE(a, b) WPRED_CHECK((a) != (b))
#define WPRED_CHECK_LT(a, b) WPRED_CHECK((a) < (b))
#define WPRED_CHECK_LE(a, b) WPRED_CHECK((a) <= (b))
#define WPRED_CHECK_GT(a, b) WPRED_CHECK((a) > (b))
#define WPRED_CHECK_GE(a, b) WPRED_CHECK((a) >= (b))

// Debug-level contracts. WPRED_DCHECK_IS_ON is 1 in Debug builds and in any
// build compiled with -DWPRED_FORCE_DCHECKS (cmake -DWPRED_FORCE_DCHECKS=ON),
// 0 otherwise. When off, the condition is parsed but never evaluated
// (`while (false && (c))` is dead code the optimiser deletes outright), so a
// DCHECK in an inner loop costs nothing in Release while still catching
// odr/type errors at compile time in every configuration.
#if defined(WPRED_FORCE_DCHECKS) || !defined(NDEBUG)
#define WPRED_DCHECK_IS_ON 1
#else
#define WPRED_DCHECK_IS_ON 0
#endif

#if WPRED_DCHECK_IS_ON
#define WPRED_DCHECK(condition) WPRED_CHECK(condition)
#else
#define WPRED_DCHECK(condition)                                      \
  while (false && (condition))                                       \
  ::wpred::internal::CheckMessageBuilder(__FILE__, __LINE__, #condition)
#endif

#define WPRED_DCHECK_EQ(a, b) WPRED_DCHECK((a) == (b))
#define WPRED_DCHECK_NE(a, b) WPRED_DCHECK((a) != (b))
#define WPRED_DCHECK_LT(a, b) WPRED_DCHECK((a) < (b))
#define WPRED_DCHECK_LE(a, b) WPRED_DCHECK((a) <= (b))
#define WPRED_DCHECK_GT(a, b) WPRED_DCHECK((a) > (b))
#define WPRED_DCHECK_GE(a, b) WPRED_DCHECK((a) >= (b))

#endif  // WPRED_COMMON_CHECK_H_
