#ifndef WPRED_COMMON_CHECK_H_
#define WPRED_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

// Invariant-checking macros in the spirit of glog's CHECK family.
//
// These are for *programmer errors* (violated preconditions, broken
// invariants): they abort the process with a diagnostic. Recoverable errors
// (bad user input, numerical failures on degenerate data) must instead be
// reported through Status / Result<T>; see common/status.h.

namespace wpred::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition,
                                     const std::string& message) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, condition,
               message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

// Builds the optional streamed message for WPRED_CHECK(cond) << "context".
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* condition)
      : file_(file), line_(line), condition_(condition) {}

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, condition_, stream_.str());
  }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* condition_;
  std::ostringstream stream_;
};

}  // namespace wpred::internal

#define WPRED_CHECK(condition)                                       \
  while (!(condition))                                               \
  ::wpred::internal::CheckMessageBuilder(__FILE__, __LINE__, #condition)

#define WPRED_CHECK_EQ(a, b) WPRED_CHECK((a) == (b))
#define WPRED_CHECK_NE(a, b) WPRED_CHECK((a) != (b))
#define WPRED_CHECK_LT(a, b) WPRED_CHECK((a) < (b))
#define WPRED_CHECK_LE(a, b) WPRED_CHECK((a) <= (b))
#define WPRED_CHECK_GT(a, b) WPRED_CHECK((a) > (b))
#define WPRED_CHECK_GE(a, b) WPRED_CHECK((a) >= (b))

#endif  // WPRED_COMMON_CHECK_H_
