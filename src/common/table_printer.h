#ifndef WPRED_COMMON_TABLE_PRINTER_H_
#define WPRED_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace wpred {

/// Renders rows of strings as an aligned ASCII table. Used by the paper
/// reproduction benches to print each table/figure's rows in a stable,
/// diffable format.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Appends a horizontal separator line at this position.
  void AddSeparator();

  /// Renders the table.
  void Print(std::ostream& os) const;
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  // Separator rows are encoded as empty vectors.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wpred

#endif  // WPRED_COMMON_TABLE_PRINTER_H_
