#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/check.h"
#include "common/work_steal_deque.h"

namespace wpred {

namespace parallel_internal {

EnvThreadsParse ParseThreadsEnv(const char* value) {
  if (value == nullptr) return {0, false};
  // Strict positive-integer contract: the value must lead with a digit.
  // strtol alone would accept " 8", "+8", and parse "0x8" as 0-then-junk —
  // all inconsistent with the documented format.
  if (std::isdigit(static_cast<unsigned char>(value[0])) == 0) {
    return {0, true};
  }
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  if (end == value || *end != '\0') return {0, true};  // garbage / trailing junk
  if (errno == ERANGE || v > ThreadPool::kMaxWorkers) {
    // Overflow or absurdly large: clamp rather than reject — the intent
    // ("many threads") is clear, the magnitude is not actionable.
    return {ThreadPool::kMaxWorkers, false};
  }
  if (v < 1) return {0, true};  // zero / negative
  return {static_cast<int>(v), false};
}

EnvScheduleParse ParseScheduleEnv(const char* value) {
  EnvScheduleParse parsed;
  if (value == nullptr) return parsed;
  parsed.present = true;
  const std::string v(value);
  if (v == "static") {
    parsed.schedule = Schedule::kStatic;
  } else if (v == "stealing") {
    parsed.schedule = Schedule::kStealing;
  } else {
    parsed.rejected = true;
  }
  return parsed;
}

ChunkRange ChunkBounds(size_t n, size_t chunks, size_t c) {
  WPRED_DCHECK(chunks >= 1);
  WPRED_DCHECK(c < chunks);
  // base*c + min(c, extra) never overflows: base*chunks <= n and c < chunks,
  // so base*c < n; min(c, extra) <= extra < chunks <= n (for n >= chunks,
  // the only case where extra > 0 matters). The naive c*n/chunks forms c*n,
  // which wraps for n past SIZE_MAX / chunks and silently drops iterations.
  const size_t base = n / chunks;
  const size_t extra = n % chunks;
  const size_t lo = base * c + std::min(c, extra);
  return {lo, lo + base + (c < extra ? 1 : 0)};
}

}  // namespace parallel_internal

namespace {

std::atomic<bool> g_shared_created{false};
std::atomic<int> g_default_override{0};   // 0 = no override
std::atomic<int> g_schedule_override{-1};  // -1 = no override

std::atomic<uint64_t> g_tasks_stolen{0};
std::atomic<uint64_t> g_steal_failures{0};

thread_local int tl_parallel_depth = 0;

int HardwareDefaultThreads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(
                           std::min<unsigned>(hc, ThreadPool::kMaxWorkers));
}

int EnvDefaultThreads() {
  const char* env = std::getenv("WPRED_THREADS");
  const auto parsed = parallel_internal::ParseThreadsEnv(env);
  if (parsed.rejected) {
    std::fprintf(stderr,
                 "wpred: ignoring invalid WPRED_THREADS=\"%s\" (want a "
                 "positive integer); using %d hardware threads\n",
                 env, HardwareDefaultThreads());
  }
  if (parsed.threads >= 1) return parsed.threads;
  return HardwareDefaultThreads();
}

Schedule EnvDefaultSchedule() {
  const char* env = std::getenv("WPRED_SCHEDULE");
  const auto parsed = parallel_internal::ParseScheduleEnv(env);
  if (parsed.rejected) {
    std::fprintf(stderr,
                 "wpred: ignoring invalid WPRED_SCHEDULE=\"%s\" (want "
                 "\"static\" or \"stealing\"); using static\n",
                 env);
  }
  return parsed.schedule;
}

}  // namespace

int DefaultNumThreads() {
  const int override = g_default_override.load(std::memory_order_relaxed);
  if (override >= 1) return override;
  static const int env_default = EnvDefaultThreads();
  return env_default;
}

void SetDefaultNumThreads(int n) {
  g_default_override.store(
      n < 1 ? 0 : std::min(n, ThreadPool::kMaxWorkers),
      std::memory_order_relaxed);
}

int ResolveNumThreads(int num_threads) {
  if (num_threads < 1) return DefaultNumThreads();
  return std::min(num_threads, ThreadPool::kMaxWorkers);
}

Schedule DefaultSchedule() {
  const int override = g_schedule_override.load(std::memory_order_relaxed);
  if (override >= 0) return static_cast<Schedule>(override);
  static const Schedule env_default = EnvDefaultSchedule();
  return env_default;
}

void SetDefaultSchedule(Schedule schedule) {
  g_schedule_override.store(static_cast<int>(schedule),
                            std::memory_order_relaxed);
}

void ResetDefaultSchedule() {
  g_schedule_override.store(-1, std::memory_order_relaxed);
}

StealCounters GlobalStealCounters() {
  return {g_tasks_stolen.load(std::memory_order_relaxed),
          g_steal_failures.load(std::memory_order_relaxed)};
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = [] {
    g_shared_created.store(true, std::memory_order_release);
    // Leaked on purpose: worker threads may still be parked in WorkerLoop at
    // static-destruction time; joining there can deadlock with atexit order.
    return new ThreadPool();
  }();
  return *pool;
}

bool ThreadPool::SharedCreated() {
  return g_shared_created.load(std::memory_order_acquire);
}

ThreadPool::~ThreadPool() {
  std::vector<std::thread> workers;
  {
    MutexLock lock(mu_);
    stopping_ = true;
    // Swap the workers out so the join below happens outside the lock —
    // joining under mu_ would deadlock against WorkerLoop's reacquire.
    workers.swap(threads_);
  }
  cv_.NotifyAll();
  for (std::thread& t : workers) t.join();
}

void ThreadPool::EnsureWorkers(int count) {
  count = std::min(count, kMaxWorkers);
  MutexLock lock(mu_);
  while (static_cast<int>(threads_.size()) < count) {
    const int worker_id = static_cast<int>(threads_.size());
    threads_.emplace_back([this, worker_id] { WorkerLoop(worker_id); });
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
    ++tasks_submitted_;
  }
  cv_.NotifyOne();
}

int ThreadPool::workers() const {
  MutexLock lock(mu_);
  return static_cast<int>(threads_.size());
}

uint64_t ThreadPool::tasks_executed() const {
  MutexLock lock(mu_);
  return tasks_executed_;
}

uint64_t ThreadPool::tasks_submitted() const {
  MutexLock lock(mu_);
  return tasks_submitted_;
}

std::vector<double> ThreadPool::WorkerBusySeconds() const {
  std::vector<double> out(static_cast<size_t>(workers()));
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<double>(busy_ns_[i].load(std::memory_order_relaxed)) *
             1e-9;
  }
  return out;
}

void ThreadPool::WorkerLoop(int worker_id) {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      // Spelled as a loop, not a predicate lambda: Clang's thread-safety
      // analysis treats a lambda body as a separate unannotated function
      // and would warn on every guarded field the predicate reads.
      while (!stopping_ && queue_.empty()) cv_.Wait(mu_);
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++tasks_executed_;
    }
    const auto t0 = std::chrono::steady_clock::now();
    task();
    busy_ns_[static_cast<size_t>(worker_id)].fetch_add(
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()),
        std::memory_order_relaxed);
  }
}

namespace parallel_internal {

bool InParallelRegion() { return tl_parallel_depth > 0; }

}  // namespace parallel_internal

namespace {

struct ChunkOutcome {
  Status status;
  size_t error_index = 0;
  bool failed = false;
};

// Iterates one contiguous chunk in index order, bailing out (draining) as
// soon as any chunk has recorded a failure. The first iteration always runs
// even if a sibling already failed: that pins the reported error for a
// failure at a chunk boundary (index 0 in particular) regardless of how the
// chunks were scheduled.
void RunChunk(size_t lo, size_t hi, const std::function<Status(size_t)>& fn,
              std::atomic<bool>& abort, ChunkOutcome& outcome) {
  ++tl_parallel_depth;
  for (size_t i = lo; i < hi; ++i) {
    if (i != lo && abort.load(std::memory_order_relaxed)) break;
    Status st = fn(i);
    if (!st.ok()) {
      outcome.status = std::move(st);
      outcome.error_index = i;
      outcome.failed = true;
      abort.store(true, std::memory_order_relaxed);
      break;
    }
  }
  --tl_parallel_depth;
}

Status SerialFor(size_t n, const std::function<Status(size_t)>& fn) {
  ++tl_parallel_depth;
  Status result = Status::OK();
  for (size_t i = 0; i < n; ++i) {
    result = fn(i);
    if (!result.ok()) break;
  }
  --tl_parallel_depth;
  return result;
}

}  // namespace

namespace {

// Lowest-index error wins: scanning chunk outcomes in order yields the
// smallest failed index because chunks are contiguous and ascending — under
// either schedule.
Status FirstFailure(std::vector<ChunkOutcome>& outcomes) {
  for (ChunkOutcome& outcome : outcomes) {
    if (outcome.failed) return std::move(outcome.status);
  }
  return Status::OK();
}

Status StaticFor(size_t n, size_t chunks,
                 const std::function<Status(size_t)>& fn) {
  ThreadPool& pool = ThreadPool::Shared();
  pool.EnsureWorkers(static_cast<int>(chunks) - 1);

  std::vector<ChunkOutcome> outcomes(chunks);
  std::atomic<bool> abort{false};
  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t pending = chunks - 1;

  for (size_t c = 1; c < chunks; ++c) {
    const auto range = parallel_internal::ChunkBounds(n, chunks, c);
    pool.Submit([&, range, c] {
      RunChunk(range.lo, range.hi, fn, abort, outcomes[c]);
      // Notify while holding the lock: done_cv lives on the caller's stack,
      // and the caller may return (destroying it) the moment it observes
      // pending == 0 — which it cannot do before this unlock completes.
      std::lock_guard<std::mutex> lock(done_mu);
      --pending;
      done_cv.notify_one();
    });
  }
  // The calling thread owns chunk 0 rather than idling on the join.
  const auto first = parallel_internal::ChunkBounds(n, chunks, 0);
  RunChunk(first.lo, first.hi, fn, abort, outcomes[0]);
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return pending == 0; });
  }
  return FirstFailure(outcomes);
}

// Chunks per worker under Schedule::kStealing: enough slack that an unlucky
// cost distribution can be rebalanced by theft, coarse enough that deque
// traffic stays negligible next to the chunk bodies.
constexpr size_t kStealChunksPerWorker = 8;

Status StealingFor(size_t n, size_t workers,
                   const std::function<Status(size_t)>& fn) {
  const size_t chunks = std::min(n, workers * kStealChunksPerWorker);
  const size_t roles = std::min(workers, chunks);
  if (roles <= 1) return SerialFor(n, fn);

  ThreadPool& pool = ThreadPool::Shared();
  pool.EnsureWorkers(static_cast<int>(roles) - 1);

  std::vector<ChunkOutcome> outcomes(chunks);
  std::atomic<bool> abort{false};

  // One deque per worker role, preloaded with a contiguous block of chunk
  // ids. Chunks are pushed in descending order so the owner pops them in
  // ascending order (walking its block front-to-back, like the static
  // schedule would) while thieves take from the block's tail.
  std::vector<std::unique_ptr<WorkStealDeque>> deques(roles);
  for (size_t r = 0; r < roles; ++r) {
    const auto block = parallel_internal::ChunkBounds(chunks, roles, r);
    deques[r] = std::make_unique<WorkStealDeque>(block.hi - block.lo);
    for (size_t c = block.hi; c > block.lo; --c) {
      const bool pushed = deques[r]->PushBottom(c - 1);
      WPRED_DCHECK(pushed);
      (void)pushed;  // capacity was sized to the block; cannot be full
    }
  }

  const auto run_role = [&](size_t role) {
    uint64_t stolen = 0;
    uint64_t failures = 0;
    size_t chunk = 0;
    const auto run = [&](size_t c) {
      const auto range = parallel_internal::ChunkBounds(n, chunks, c);
      RunChunk(range.lo, range.hi, fn, abort, outcomes[c]);
    };
    for (;;) {
      if (deques[role]->PopBottom(&chunk)) {
        run(chunk);
        continue;
      }
      // Own deque drained: sweep the other deques for work, retrying a
      // victim while CAS races (not emptiness) keep the theft from landing.
      bool progressed = false;
      for (size_t v = 1; v < roles && !progressed; ++v) {
        WorkStealDeque& victim = *deques[(role + v) % roles];
        for (;;) {
          const WorkStealDeque::Steal outcome = victim.StealTop(&chunk);
          if (outcome == WorkStealDeque::Steal::kStolen) {
            ++stolen;
            run(chunk);
            progressed = true;
            break;
          }
          if (outcome == WorkStealDeque::Steal::kEmpty) break;
          ++failures;  // kLost: a racing pop/steal won; the victim may
                       // still hold work, so try it again.
        }
      }
      // Every deque observed empty: all chunks are claimed (each by exactly
      // one role); whoever claimed them finishes them before returning.
      if (!progressed) break;
    }
    g_tasks_stolen.fetch_add(stolen, std::memory_order_relaxed);
    g_steal_failures.fetch_add(failures, std::memory_order_relaxed);
  };

  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t pending = roles - 1;
  for (size_t r = 1; r < roles; ++r) {
    pool.Submit([&, r] {
      run_role(r);
      // Same lock-held notify as the static path: done_cv lives on the
      // caller's stack.
      std::lock_guard<std::mutex> lock(done_mu);
      --pending;
      done_cv.notify_one();
    });
  }
  run_role(0);
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return pending == 0; });
  }
  return FirstFailure(outcomes);
}

}  // namespace

Status ParallelFor(size_t n, int num_threads, Schedule schedule,
                   const std::function<Status(size_t)>& fn) {
  if (n == 0) return Status::OK();
  const size_t threads = static_cast<size_t>(ResolveNumThreads(num_threads));
  const size_t chunks = std::min(threads, n);
  // Serial fallback: one thread, or already inside a parallel region (nested
  // parallelism would oversubscribe and gains nothing under either
  // schedule). Touches no thread-pool code whatsoever.
  if (chunks <= 1 || parallel_internal::InParallelRegion()) {
    return SerialFor(n, fn);
  }
  if (schedule == Schedule::kStealing) return StealingFor(n, threads, fn);
  return StaticFor(n, chunks, fn);
}

Status ParallelFor(size_t n, int num_threads,
                   const std::function<Status(size_t)>& fn) {
  return ParallelFor(n, num_threads, DefaultSchedule(), fn);
}

Status ParallelFor(size_t n, const std::function<Status(size_t)>& fn) {
  return ParallelFor(n, /*num_threads=*/0, DefaultSchedule(), fn);
}

}  // namespace wpred
