#include "featsel/ranking.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace wpred {

std::vector<size_t> FeatureRanking::TopK(size_t k) const {
  std::vector<size_t> order(ranks.size());
  std::iota(order.begin(), order.end(), 0);
  // Selectors may assign tied ranks; break ties on the feature index so the
  // k-th slot does not depend on std::sort's unspecified ordering.
  std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    if (ranks[a] != ranks[b]) return ranks[a] < ranks[b];
    return a < b;
  });
  order.resize(std::min(k, order.size()));
  return order;
}

FeatureRanking ScoresToRanking(const Vector& scores) {
  FeatureRanking ranking;
  ranking.scores = scores;
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&scores](size_t a, size_t b) {
    return scores[a] > scores[b];
  });
  ranking.ranks.assign(scores.size(), 0);
  for (size_t pos = 0; pos < order.size(); ++pos) {
    ranking.ranks[order[pos]] = static_cast<int>(pos) + 1;
  }
  return ranking;
}

std::vector<size_t> TopKByAggregateRank(
    const std::vector<FeatureRanking>& rankings, size_t k) {
  WPRED_CHECK(!rankings.empty());
  const size_t p = rankings[0].ranks.size();
  std::vector<long> totals(p, 0);
  for (const FeatureRanking& r : rankings) {
    WPRED_CHECK_EQ(r.ranks.size(), p) << "inconsistent feature arity";
    for (size_t i = 0; i < p; ++i) totals[i] += r.ranks[i];
  }
  std::vector<size_t> order(p);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&totals](size_t a, size_t b) {
    return totals[a] < totals[b];
  });
  order.resize(std::min(k, p));
  return order;
}

}  // namespace wpred
