#ifndef WPRED_FEATSEL_FILTER_H_
#define WPRED_FEATSEL_FILTER_H_

#include "featsel/selector.h"

namespace wpred {

// Filter strategies (paper Section 4.1.1): score each feature before any
// model is fit. Fast, univariate, may keep correlated predictors.

/// Scores features by their variance after min-max normalisation (so scales
/// are comparable); the target is ignored.
class VarianceThresholdSelector : public FeatureSelector {
 public:
  std::string name() const override { return "Variance"; }
  SelectorOutput output_kind() const override { return SelectorOutput::kScore; }
  Result<Vector> ScoreFeatures(const Matrix& x,
                               const std::vector<int>& y) override;
};

/// |Pearson correlation| between each feature and the (numeric) class label.
class PearsonSelector : public FeatureSelector {
 public:
  std::string name() const override { return "Pearson"; }
  SelectorOutput output_kind() const override { return SelectorOutput::kScore; }
  Result<Vector> ScoreFeatures(const Matrix& x,
                               const std::vector<int>& y) override;
};

/// One-way ANOVA F-statistic of each feature across classes (fANOVA).
class FAnovaSelector : public FeatureSelector {
 public:
  std::string name() const override { return "fANOVA"; }
  SelectorOutput output_kind() const override { return SelectorOutput::kScore; }
  Result<Vector> ScoreFeatures(const Matrix& x,
                               const std::vector<int>& y) override;
};

/// Mutual information between each feature (discretised into equal-width
/// bins) and the class label.
class MutualInfoSelector : public FeatureSelector {
 public:
  explicit MutualInfoSelector(int bins = 10) : bins_(bins) {}
  std::string name() const override { return "MIGain"; }
  SelectorOutput output_kind() const override { return SelectorOutput::kScore; }
  Result<Vector> ScoreFeatures(const Matrix& x,
                               const std::vector<int>& y) override;

 private:
  int bins_;
};

/// The paper's Table 3 baseline: no selection at all — features keep their
/// catalog order, so "top-k" is simply the first k catalog features.
class BaselineSelector : public FeatureSelector {
 public:
  std::string name() const override { return "Baseline"; }
  SelectorOutput output_kind() const override { return SelectorOutput::kRank; }
  Result<Vector> ScoreFeatures(const Matrix& x,
                               const std::vector<int>& y) override;
};

}  // namespace wpred

#endif  // WPRED_FEATSEL_FILTER_H_
