#include "featsel/embedded.h"

#include "ml/lasso.h"
#include "ml/random_forest.h"

namespace wpred {
namespace {

Vector LabelsAsTarget(const std::vector<int>& y) {
  return Vector(y.begin(), y.end());
}

}  // namespace

Result<Vector> LassoSelector::ScoreFeatures(const Matrix& x,
                                            const std::vector<int>& y) {
  WPRED_RETURN_IF_ERROR(featsel_internal::ValidateSelectionProblem(x, y));
  if (alpha_ratio_ <= 0.0 || alpha_ratio_ >= 1.0) {
    return Status::InvalidArgument("alpha_ratio must be in (0, 1)");
  }
  const Vector target = LabelsAsTarget(y);
  const double alpha = LassoAlphaMax(x, target) * alpha_ratio_;
  Lasso lasso(alpha);
  WPRED_RETURN_IF_ERROR(lasso.Fit(x, target));
  return lasso.FeatureImportances();
}

Result<Vector> ElasticNetSelector::ScoreFeatures(const Matrix& x,
                                                 const std::vector<int>& y) {
  WPRED_RETURN_IF_ERROR(featsel_internal::ValidateSelectionProblem(x, y));
  if (alpha_ratio_ <= 0.0 || alpha_ratio_ >= 1.0) {
    return Status::InvalidArgument("alpha_ratio must be in (0, 1)");
  }
  const Vector target = LabelsAsTarget(y);
  const double alpha = LassoAlphaMax(x, target) * alpha_ratio_;
  ElasticNet enet(alpha, l1_ratio_);
  WPRED_RETURN_IF_ERROR(enet.Fit(x, target));
  return enet.FeatureImportances();
}

Result<Vector> RandomForestSelector::ScoreFeatures(const Matrix& x,
                                                   const std::vector<int>& y) {
  WPRED_RETURN_IF_ERROR(featsel_internal::ValidateSelectionProblem(x, y));
  ForestParams params;
  params.num_trees = num_trees_;
  RandomForestClassifier forest(params);
  WPRED_RETURN_IF_ERROR(forest.Fit(x, y));
  return forest.FeatureImportances();
}

}  // namespace wpred
