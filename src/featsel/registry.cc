#include "featsel/registry.h"

#include "featsel/embedded.h"
#include "featsel/filter.h"
#include "featsel/wrapper.h"

namespace wpred {

Result<std::unique_ptr<FeatureSelector>> CreateSelector(
    const std::string& name) {
  if (name == "Variance") {
    return std::unique_ptr<FeatureSelector>(new VarianceThresholdSelector());
  }
  if (name == "fANOVA") {
    return std::unique_ptr<FeatureSelector>(new FAnovaSelector());
  }
  if (name == "MIGain") {
    return std::unique_ptr<FeatureSelector>(new MutualInfoSelector());
  }
  if (name == "Pearson") {
    return std::unique_ptr<FeatureSelector>(new PearsonSelector());
  }
  if (name == "Lasso") {
    return std::unique_ptr<FeatureSelector>(new LassoSelector());
  }
  if (name == "ElasticNet") {
    return std::unique_ptr<FeatureSelector>(new ElasticNetSelector());
  }
  if (name == "RandomForest") {
    return std::unique_ptr<FeatureSelector>(new RandomForestSelector());
  }
  if (name == "RFE Linear") {
    return std::unique_ptr<FeatureSelector>(
        new RfeSelector(WrapperEstimator::kLinear));
  }
  if (name == "RFE DecTree") {
    return std::unique_ptr<FeatureSelector>(
        new RfeSelector(WrapperEstimator::kDecisionTree));
  }
  if (name == "RFE LogReg") {
    return std::unique_ptr<FeatureSelector>(
        new RfeSelector(WrapperEstimator::kLogReg));
  }
  if (name == "Fw SFS Linear") {
    return std::unique_ptr<FeatureSelector>(
        new SfsSelector(WrapperEstimator::kLinear, /*forward=*/true));
  }
  if (name == "Fw SFS DecTree") {
    return std::unique_ptr<FeatureSelector>(
        new SfsSelector(WrapperEstimator::kDecisionTree, /*forward=*/true));
  }
  if (name == "Fw SFS LogReg") {
    return std::unique_ptr<FeatureSelector>(
        new SfsSelector(WrapperEstimator::kLogReg, /*forward=*/true));
  }
  if (name == "Bw SFS Linear") {
    return std::unique_ptr<FeatureSelector>(
        new SfsSelector(WrapperEstimator::kLinear, /*forward=*/false));
  }
  if (name == "Bw SFS DecTree") {
    return std::unique_ptr<FeatureSelector>(
        new SfsSelector(WrapperEstimator::kDecisionTree, /*forward=*/false));
  }
  if (name == "Bw SFS LogReg") {
    return std::unique_ptr<FeatureSelector>(
        new SfsSelector(WrapperEstimator::kLogReg, /*forward=*/false));
  }
  if (name == "Baseline") {
    return std::unique_ptr<FeatureSelector>(new BaselineSelector());
  }
  return Status::NotFound("unknown feature-selection strategy: " + name);
}

std::vector<std::string> AllSelectorNames() {
  return {"Variance",       "fANOVA",        "MIGain",
          "Pearson",        "Lasso",         "ElasticNet",
          "RandomForest",   "RFE Linear",    "RFE DecTree",
          "RFE LogReg",     "Fw SFS Linear", "Fw SFS DecTree",
          "Fw SFS LogReg",  "Bw SFS Linear", "Bw SFS DecTree",
          "Bw SFS LogReg",  "Baseline"};
}

}  // namespace wpred
