#ifndef WPRED_FEATSEL_SELECTOR_H_
#define WPRED_FEATSEL_SELECTOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace wpred {

/// How a strategy expresses importance (paper Section 4.2): score-based
/// strategies emit a continuous score per feature; rank-based (wrapper)
/// strategies emit an ordering.
enum class SelectorOutput { kScore, kRank };

/// A feature-selection strategy. Input is an observation matrix (rows =
/// observations over the feature catalog) and a class label per row (the
/// workload-membership target used throughout Section 4). Output is a
/// per-feature importance score where HIGHER means more important; rank
/// based strategies encode rank r as score (p − r) so both kinds flow
/// through the same rank-aggregation machinery.
class FeatureSelector {
 public:
  virtual ~FeatureSelector() = default;

  virtual std::string name() const = 0;
  virtual SelectorOutput output_kind() const = 0;

  virtual Result<Vector> ScoreFeatures(const Matrix& x,
                                       const std::vector<int>& y) = 0;

  /// Worker threads for strategies with parallelizable inner loops (the
  /// wrapper selectors' per-candidate scoring); < 1 means the process
  /// default (WPRED_THREADS), 1 forces the serial path. Scores are
  /// bit-identical at any thread count; strategies without such loops
  /// ignore the knob.
  void set_num_threads(int num_threads) { num_threads_ = num_threads; }
  int num_threads() const { return num_threads_; }

 private:
  int num_threads_ = 0;
};

namespace featsel_internal {

/// Shared validation for selector inputs.
Status ValidateSelectionProblem(const Matrix& x, const std::vector<int>& y);

}  // namespace featsel_internal

}  // namespace wpred

#endif  // WPRED_FEATSEL_SELECTOR_H_
