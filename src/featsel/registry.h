#ifndef WPRED_FEATSEL_REGISTRY_H_
#define WPRED_FEATSEL_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "featsel/selector.h"

namespace wpred {

/// Creates a feature-selection strategy by its paper Table 3 name:
/// "Variance", "fANOVA", "MIGain", "Pearson", "Lasso", "ElasticNet",
/// "RandomForest", "RFE Linear", "RFE DecTree", "RFE LogReg",
/// "Fw SFS Linear", "Fw SFS DecTree", "Fw SFS LogReg",
/// "Bw SFS Linear", "Bw SFS DecTree", "Bw SFS LogReg", "Baseline".
Result<std::unique_ptr<FeatureSelector>> CreateSelector(
    const std::string& name);

/// All strategy names in the paper's Table 3 row order (baseline last).
std::vector<std::string> AllSelectorNames();

}  // namespace wpred

#endif  // WPRED_FEATSEL_REGISTRY_H_
