#include "featsel/wrapper.h"

#include <algorithm>
#include <numeric>

#include "common/parallel.h"
#include "common/rng.h"
#include "linalg/stats.h"
#include "ml/cross_validation.h"
#include "ml/decision_tree.h"
#include "ml/linear_regression.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "obs/metrics.h"

namespace wpred {
namespace {

// Wrapper-internal estimator hyper-parameters are deliberately light: the
// point of wrappers is subset search, not squeezing the estimator.
constexpr int kLogRegIters = 80;
constexpr uint64_t kCvSeed = 0xfeed5e1;

Result<Vector> EstimatorImportances(WrapperEstimator estimator, const Matrix& x,
                                    const std::vector<int>& y) {
  switch (estimator) {
    case WrapperEstimator::kLinear: {
      LinearRegression model;
      WPRED_RETURN_IF_ERROR(model.Fit(x, Vector(y.begin(), y.end())));
      return model.FeatureImportances();
    }
    case WrapperEstimator::kDecisionTree: {
      DecisionTreeClassifier model;
      WPRED_RETURN_IF_ERROR(model.Fit(x, y));
      return model.FeatureImportances();
    }
    case WrapperEstimator::kLogReg: {
      LogisticRegression model(1e-3, kLogRegIters);
      WPRED_RETURN_IF_ERROR(model.Fit(x, y));
      return model.FeatureImportances();
    }
  }
  return Status::InvalidArgument("unknown estimator");
}

// Cross-validated subset score: accuracy for classifiers, R² for the linear
// probability model. Higher is better. Folds score into their own slot and
// reduce in fold order, so the score is bit-identical at any thread count.
Result<double> CvSubsetScore(WrapperEstimator estimator, const Matrix& x,
                             const std::vector<int>& y, int folds,
                             int num_threads) {
  Rng rng(kCvSeed);
  WPRED_ASSIGN_OR_RETURN(std::vector<FoldSplit> splits,
                         KFoldSplits(x.rows(), folds, rng));
  WPRED_ASSIGN_OR_RETURN(
      Vector fold_scores,
      ParallelMap<double>(
          splits.size(), num_threads, [&](size_t f) -> Result<double> {
            const FoldSplit& split = splits[f];
            const Matrix x_train = x.SelectRows(split.train);
            const Matrix x_test = x.SelectRows(split.test);
            std::vector<int> y_train(split.train.size());
            std::vector<int> y_test(split.test.size());
            for (size_t i = 0; i < split.train.size(); ++i) {
              y_train[i] = y[split.train[i]];
            }
            for (size_t i = 0; i < split.test.size(); ++i) {
              y_test[i] = y[split.test[i]];
            }

            if (estimator == WrapperEstimator::kLinear) {
              LinearRegression model;
              WPRED_RETURN_IF_ERROR(
                  model.Fit(x_train, Vector(y_train.begin(), y_train.end())));
              WPRED_ASSIGN_OR_RETURN(Vector pred, model.PredictBatch(x_test));
              return R2(Vector(y_test.begin(), y_test.end()), pred);
            }
            if (estimator == WrapperEstimator::kDecisionTree) {
              DecisionTreeClassifier model;
              WPRED_RETURN_IF_ERROR(model.Fit(x_train, y_train));
              WPRED_ASSIGN_OR_RETURN(std::vector<int> pred,
                                     model.PredictBatch(x_test));
              return Accuracy(y_test, pred);
            }
            LogisticRegression model(1e-3, kLogRegIters);
            WPRED_RETURN_IF_ERROR(model.Fit(x_train, y_train));
            WPRED_ASSIGN_OR_RETURN(std::vector<int> pred,
                                   model.PredictBatch(x_test));
            return Accuracy(y_test, pred);
          }));
  double total = 0.0;
  for (const double s : fold_scores) total += s;
  return total / folds;
}

Vector RanksToScores(const std::vector<int>& ranks) {
  Vector scores(ranks.size());
  for (size_t i = 0; i < ranks.size(); ++i) {
    scores[i] = static_cast<double>(ranks.size() - ranks[i]);
  }
  return scores;
}

}  // namespace

std::string_view WrapperEstimatorName(WrapperEstimator estimator) {
  switch (estimator) {
    case WrapperEstimator::kLinear:
      return "Linear";
    case WrapperEstimator::kDecisionTree:
      return "DecTree";
    case WrapperEstimator::kLogReg:
      return "LogReg";
  }
  return "Unknown";
}

std::string RfeSelector::name() const {
  return "RFE " + std::string(WrapperEstimatorName(estimator_));
}

Result<Vector> RfeSelector::ScoreFeatures(const Matrix& x,
                                          const std::vector<int>& y) {
  WPRED_RETURN_IF_ERROR(featsel_internal::ValidateSelectionProblem(x, y));
  StandardScaler scaler;
  const Matrix xs = scaler.FitTransform(x);

  std::vector<size_t> remaining(x.cols());
  std::iota(remaining.begin(), remaining.end(), 0);
  std::vector<int> ranks(x.cols(), 0);

  while (remaining.size() > 1) {
    const Matrix subset = xs.SelectCols(remaining);
    WPRED_ASSIGN_OR_RETURN(Vector importances,
                           EstimatorImportances(estimator_, subset, y));
    size_t weakest = 0;
    for (size_t i = 1; i < importances.size(); ++i) {
      if (importances[i] < importances[weakest]) weakest = i;
    }
    ranks[remaining[weakest]] = static_cast<int>(remaining.size());
    remaining.erase(remaining.begin() + static_cast<long>(weakest));
    WPRED_COUNT_ADD("featsel.rfe.eliminations", 1);
  }
  ranks[remaining[0]] = 1;
  return RanksToScores(ranks);
}

std::string SfsSelector::name() const {
  return std::string(forward_ ? "Fw SFS " : "Bw SFS ") +
         std::string(WrapperEstimatorName(estimator_));
}

Result<Vector> SfsSelector::ScoreFeatures(const Matrix& x,
                                          const std::vector<int>& y) {
  WPRED_RETURN_IF_ERROR(featsel_internal::ValidateSelectionProblem(x, y));
  if (cv_folds_ < 2) return Status::InvalidArgument("cv_folds must be >= 2");
  StandardScaler scaler;
  const Matrix xs = scaler.FitTransform(x);
  const size_t p = x.cols();
  std::vector<int> ranks(p, 0);

  if (forward_) {
    std::vector<size_t> selected;
    std::vector<size_t> remaining(p);
    std::iota(remaining.begin(), remaining.end(), 0);
    int next_rank = 1;
    while (!remaining.empty()) {
      // Candidates score concurrently into their own slot; the argmax scans
      // in candidate order with a strict '>', so ties resolve to the lowest
      // position exactly as the serial loop did.
      WPRED_ASSIGN_OR_RETURN(
          Vector scores,
          ParallelMap<double>(remaining.size(), num_threads(),
                              [&](size_t pos) -> Result<double> {
                                std::vector<size_t> candidate = selected;
                                candidate.push_back(remaining[pos]);
                                return CvSubsetScore(estimator_,
                                                     xs.SelectCols(candidate),
                                                     y, cv_folds_,
                                                     num_threads());
                              }));
      WPRED_COUNT_ADD("featsel.sfs.candidates_scored",
                      static_cast<uint64_t>(scores.size()));
      double best_score = -1e300;
      size_t best_pos = 0;
      for (size_t pos = 0; pos < scores.size(); ++pos) {
        if (scores[pos] > best_score) {
          best_score = scores[pos];
          best_pos = pos;
        }
      }
      selected.push_back(remaining[best_pos]);
      ranks[remaining[best_pos]] = next_rank++;
      remaining.erase(remaining.begin() + static_cast<long>(best_pos));
    }
  } else {
    std::vector<size_t> selected(p);
    std::iota(selected.begin(), selected.end(), 0);
    int worst_rank = static_cast<int>(p);
    while (selected.size() > 1) {
      WPRED_ASSIGN_OR_RETURN(
          Vector scores,
          ParallelMap<double>(selected.size(), num_threads(),
                              [&](size_t pos) -> Result<double> {
                                std::vector<size_t> candidate = selected;
                                candidate.erase(candidate.begin() +
                                                static_cast<long>(pos));
                                return CvSubsetScore(estimator_,
                                                     xs.SelectCols(candidate),
                                                     y, cv_folds_,
                                                     num_threads());
                              }));
      WPRED_COUNT_ADD("featsel.sfs.candidates_scored",
                      static_cast<uint64_t>(scores.size()));
      double best_score = -1e300;
      size_t drop_pos = 0;
      for (size_t pos = 0; pos < scores.size(); ++pos) {
        if (scores[pos] > best_score) {
          best_score = scores[pos];
          drop_pos = pos;
        }
      }
      ranks[selected[drop_pos]] = worst_rank--;
      selected.erase(selected.begin() + static_cast<long>(drop_pos));
    }
    ranks[selected[0]] = 1;
  }
  return RanksToScores(ranks);
}

}  // namespace wpred
