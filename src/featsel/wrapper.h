#ifndef WPRED_FEATSEL_WRAPPER_H_
#define WPRED_FEATSEL_WRAPPER_H_

#include "featsel/selector.h"

namespace wpred {

// Wrapper strategies (paper Section 4.1.3): repeatedly train an estimator on
// candidate feature subsets. Accurate but orders of magnitude slower than
// filters — Table 3's timing column exists to show exactly that.

/// Estimator family a wrapper trains internally.
enum class WrapperEstimator { kLinear, kDecisionTree, kLogReg };

std::string_view WrapperEstimatorName(WrapperEstimator estimator);

/// Recursive Feature Elimination: fit the estimator on the remaining
/// features, drop the least important one, repeat. Feature dropped first
/// gets the worst rank.
class RfeSelector : public FeatureSelector {
 public:
  explicit RfeSelector(WrapperEstimator estimator) : estimator_(estimator) {}
  std::string name() const override;
  SelectorOutput output_kind() const override { return SelectorOutput::kRank; }
  Result<Vector> ScoreFeatures(const Matrix& x,
                               const std::vector<int>& y) override;

 private:
  WrapperEstimator estimator_;
};

/// Sequential Feature Selection, forward (greedily add the feature whose
/// addition maximises cross-validated estimator performance) or backward
/// (greedily remove the feature whose removal maximises it).
class SfsSelector : public FeatureSelector {
 public:
  SfsSelector(WrapperEstimator estimator, bool forward, int cv_folds = 3)
      : estimator_(estimator), forward_(forward), cv_folds_(cv_folds) {}
  std::string name() const override;
  SelectorOutput output_kind() const override { return SelectorOutput::kRank; }
  Result<Vector> ScoreFeatures(const Matrix& x,
                               const std::vector<int>& y) override;

 private:
  WrapperEstimator estimator_;
  bool forward_;
  int cv_folds_;
};

}  // namespace wpred

#endif  // WPRED_FEATSEL_WRAPPER_H_
