#ifndef WPRED_FEATSEL_EMBEDDED_H_
#define WPRED_FEATSEL_EMBEDDED_H_

#include "featsel/selector.h"

namespace wpred {

// Embedded strategies (paper Section 4.1.2): importance falls out of model
// training itself.

/// Lasso on the (numeric) class label; importance = |standardised coef|.
/// `alpha_ratio` scales the data-dependent α_max (0 < ratio < 1); the
/// regularisation keeps correlated duplicates out.
class LassoSelector : public FeatureSelector {
 public:
  explicit LassoSelector(double alpha_ratio = 0.01) : alpha_ratio_(alpha_ratio) {}
  std::string name() const override { return "Lasso"; }
  SelectorOutput output_kind() const override { return SelectorOutput::kScore; }
  Result<Vector> ScoreFeatures(const Matrix& x,
                               const std::vector<int>& y) override;

 private:
  double alpha_ratio_;
};

/// Elastic net on the class label (L1 keeps the selection, L2 spreads
/// importance over correlated predictors instead of picking arbitrarily).
class ElasticNetSelector : public FeatureSelector {
 public:
  ElasticNetSelector(double alpha_ratio = 0.01, double l1_ratio = 0.5)
      : alpha_ratio_(alpha_ratio), l1_ratio_(l1_ratio) {}
  std::string name() const override { return "ElasticNet"; }
  SelectorOutput output_kind() const override { return SelectorOutput::kScore; }
  Result<Vector> ScoreFeatures(const Matrix& x,
                               const std::vector<int>& y) override;

 private:
  double alpha_ratio_;
  double l1_ratio_;
};

/// Random-forest impurity importances on the classification problem.
class RandomForestSelector : public FeatureSelector {
 public:
  explicit RandomForestSelector(int num_trees = 200) : num_trees_(num_trees) {}
  std::string name() const override { return "RandomForest"; }
  SelectorOutput output_kind() const override { return SelectorOutput::kScore; }
  Result<Vector> ScoreFeatures(const Matrix& x,
                               const std::vector<int>& y) override;

 private:
  int num_trees_;
};

}  // namespace wpred

#endif  // WPRED_FEATSEL_EMBEDDED_H_
