#include "featsel/filter.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "linalg/stats.h"

namespace wpred {

namespace featsel_internal {

Status ValidateSelectionProblem(const Matrix& x, const std::vector<int>& y) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("empty observation matrix");
  }
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("row count mismatch between x and y");
  }
  for (int label : y) {
    if (label < 0) return Status::InvalidArgument("labels must be >= 0");
  }
  return Status::OK();
}

}  // namespace featsel_internal

Result<Vector> VarianceThresholdSelector::ScoreFeatures(
    const Matrix& x, const std::vector<int>& y) {
  WPRED_RETURN_IF_ERROR(featsel_internal::ValidateSelectionProblem(x, y));
  MinMaxScaler scaler;
  const Matrix normalized = scaler.FitTransform(x);
  Vector scores(x.cols());
  for (size_t c = 0; c < x.cols(); ++c) {
    scores[c] = Variance(normalized.Col(c));
  }
  return scores;
}

Result<Vector> PearsonSelector::ScoreFeatures(const Matrix& x,
                                              const std::vector<int>& y) {
  WPRED_RETURN_IF_ERROR(featsel_internal::ValidateSelectionProblem(x, y));
  const Vector target(y.begin(), y.end());
  Vector scores(x.cols());
  for (size_t c = 0; c < x.cols(); ++c) {
    scores[c] = std::fabs(PearsonCorrelation(x.Col(c), target));
  }
  return scores;
}

Result<Vector> FAnovaSelector::ScoreFeatures(const Matrix& x,
                                             const std::vector<int>& y) {
  WPRED_RETURN_IF_ERROR(featsel_internal::ValidateSelectionProblem(x, y));
  // Group rows by class.
  std::map<int, std::vector<size_t>> groups;
  for (size_t i = 0; i < y.size(); ++i) groups[y[i]].push_back(i);
  const size_t k = groups.size();
  const size_t n = x.rows();
  if (k < 2) return Status::InvalidArgument("need at least two classes");
  if (n <= k) return Status::InvalidArgument("too few rows for ANOVA");

  Vector scores(x.cols());
  for (size_t c = 0; c < x.cols(); ++c) {
    const Vector col = x.Col(c);
    const double grand_mean = Mean(col);
    double ss_between = 0.0;
    double ss_within = 0.0;
    for (const auto& [label, idx] : groups) {
      double group_mean = 0.0;
      for (size_t i : idx) group_mean += col[i];
      group_mean /= static_cast<double>(idx.size());
      ss_between += static_cast<double>(idx.size()) *
                    (group_mean - grand_mean) * (group_mean - grand_mean);
      for (size_t i : idx) {
        ss_within += (col[i] - group_mean) * (col[i] - group_mean);
      }
    }
    const double ms_between = ss_between / static_cast<double>(k - 1);
    const double ms_within = ss_within / static_cast<double>(n - k);
    scores[c] = ms_within > 0.0 ? ms_between / ms_within
                                : (ms_between > 0.0 ? 1e12 : 0.0);
  }
  return scores;
}

Result<Vector> MutualInfoSelector::ScoreFeatures(const Matrix& x,
                                                 const std::vector<int>& y) {
  WPRED_RETURN_IF_ERROR(featsel_internal::ValidateSelectionProblem(x, y));
  if (bins_ < 2) return Status::InvalidArgument("bins must be >= 2");
  const size_t n = x.rows();
  int num_classes = 0;
  for (int label : y) num_classes = std::max(num_classes, label + 1);

  Vector class_p(static_cast<size_t>(num_classes), 0.0);
  for (int label : y) class_p[static_cast<size_t>(label)] += 1.0 / n;

  Vector scores(x.cols());
  for (size_t c = 0; c < x.cols(); ++c) {
    const Vector col = x.Col(c);
    const double lo = Min(col);
    const double hi = Max(col);
    if (hi <= lo) {
      scores[c] = 0.0;  // constant feature carries no information
      continue;
    }
    // Joint histogram over (bin, class).
    Matrix joint(static_cast<size_t>(bins_), static_cast<size_t>(num_classes));
    Vector bin_p(static_cast<size_t>(bins_), 0.0);
    for (size_t i = 0; i < n; ++i) {
      int b = static_cast<int>((col[i] - lo) / (hi - lo) * bins_);
      b = std::clamp(b, 0, bins_ - 1);
      joint(static_cast<size_t>(b), static_cast<size_t>(y[i])) += 1.0 / n;
      bin_p[static_cast<size_t>(b)] += 1.0 / n;
    }
    double mi = 0.0;
    for (int b = 0; b < bins_; ++b) {
      for (int cls = 0; cls < num_classes; ++cls) {
        const double pxy = joint(static_cast<size_t>(b),
                                 static_cast<size_t>(cls));
        if (pxy <= 0.0) continue;
        mi += pxy * std::log(pxy / (bin_p[static_cast<size_t>(b)] *
                                    class_p[static_cast<size_t>(cls)]));
      }
    }
    scores[c] = mi;
  }
  return scores;
}

Result<Vector> BaselineSelector::ScoreFeatures(const Matrix& x,
                                               const std::vector<int>& y) {
  WPRED_RETURN_IF_ERROR(featsel_internal::ValidateSelectionProblem(x, y));
  Vector scores(x.cols());
  for (size_t c = 0; c < x.cols(); ++c) {
    scores[c] = static_cast<double>(x.cols() - c);
  }
  return scores;
}

}  // namespace wpred
