#ifndef WPRED_FEATSEL_RANKING_H_
#define WPRED_FEATSEL_RANKING_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

namespace wpred {

/// Importance ranking of p features: ranks[i] is the rank of feature i,
/// 1 = most important. Derived from scores (higher = better) with ties
/// broken by feature index for determinism.
struct FeatureRanking {
  std::vector<int> ranks;
  Vector scores;

  /// Indices of the k best-ranked features, in rank order.
  std::vector<size_t> TopK(size_t k) const;
};

/// Converts scores (higher = more important) into a 1-based ranking.
FeatureRanking ScoresToRanking(const Vector& scores);

/// Paper Section 4.2: aggregates rankings produced per experiment and
/// returns the k features with the lowest aggregate (summed) rank, in
/// ascending aggregate-rank order.
std::vector<size_t> TopKByAggregateRank(
    const std::vector<FeatureRanking>& rankings, size_t k);

}  // namespace wpred

#endif  // WPRED_FEATSEL_RANKING_H_
