#include "stream/window.h"

#include <cmath>
#include <utility>

#include "telemetry/feature_catalog.h"

namespace wpred {

void RunningMoments::Push(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningMoments::Pop(double x) {
  WPRED_DCHECK_GT(count_, 0u);
  if (count_ == 1) {
    count_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
    return;
  }
  // Reverse of the Welford update: recover the mean the accumulator had
  // before x arrived, then subtract x's contribution to the centred sum.
  const double mean_before =
      (static_cast<double>(count_) * mean_ - x) /
      static_cast<double>(count_ - 1);
  m2_ -= (x - mean_) * (x - mean_before);
  // Downdating can leave a tiny negative residue where the true value is 0.
  if (m2_ < 0.0) m2_ = 0.0;
  mean_ = mean_before;
  --count_;
}

double RunningMoments::variance() const {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

Result<SlidingWindow> SlidingWindow::Create(size_t capacity,
                                            NormalizationContext ctx,
                                            int hist_bins) {
  if (capacity < 2) {
    return Status::InvalidArgument("window capacity must be >= 2 samples");
  }
  if (hist_bins < 2) return Status::InvalidArgument("bins must be >= 2");
  if (ctx.min.size() != kNumFeatures || ctx.max.size() != kNumFeatures) {
    return Status::InvalidArgument(
        "normalisation context does not cover the feature catalog");
  }
  SlidingWindow window;
  window.capacity_ = capacity;
  window.hist_bins_ = hist_bins;
  window.ctx_ = std::move(ctx);
  window.ring_ = Matrix(capacity, kNumResourceFeatures);
  window.counts_.assign(
      kNumResourceFeatures,
      std::vector<uint32_t>(static_cast<size_t>(hist_bins), 0));
  window.moments_.assign(kNumResourceFeatures, RunningMoments{});
  return window;
}

Status SlidingWindow::Push(const Vector& resource_row) {
  if (capacity_ == 0) {
    return Status::FailedPrecondition(
        "window is default-constructed; use SlidingWindow::Create");
  }
  if (resource_row.size() != kNumResourceFeatures) {
    return Status::InvalidArgument(
        "sample row must have kNumResourceFeatures values");
  }
  if (!AllFinite(resource_row)) {
    return Status::InvalidArgument("non-finite values in sample row");
  }
  if (size_ == capacity_) {
    // Evict the oldest row (the slot head_ points at) from the incremental
    // state before overwriting it.
    for (size_t f = 0; f < kNumResourceFeatures; ++f) {
      const double old = ring_(head_, f);
      const int bin = representation_internal::HistFpBin(
          NormalizeValue(ctx_, f, old), hist_bins_);
      WPRED_DCHECK_GT(counts_[f][static_cast<size_t>(bin)], 0u);
      --counts_[f][static_cast<size_t>(bin)];
      moments_[f].Pop(old);
    }
    --size_;
  }
  for (size_t f = 0; f < kNumResourceFeatures; ++f) {
    const double v = resource_row[f];
    ring_(head_, f) = v;
    const int bin = representation_internal::HistFpBin(
        NormalizeValue(ctx_, f, v), hist_bins_);
    ++counts_[f][static_cast<size_t>(bin)];
    moments_[f].Push(v);
  }
  head_ = (head_ + 1) % capacity_;
  ++size_;
  ++pushed_;
  return Status::OK();
}

Matrix SlidingWindow::Rows() const {
  Matrix out(size_, kNumResourceFeatures);
  // Oldest row first: once full the oldest slot is head_ (the next to be
  // overwritten); while filling it is slot 0.
  const size_t start = size_ == capacity_ ? head_ : 0;
  for (size_t i = 0; i < size_; ++i) {
    const size_t slot = (start + i) % capacity_;
    for (size_t f = 0; f < kNumResourceFeatures; ++f) {
      out(i, f) = ring_(slot, f);
    }
  }
  return out;
}

Result<Matrix> SlidingWindow::Mts(const std::vector<size_t>& features) const {
  if (features.empty()) return Status::InvalidArgument("no features selected");
  for (size_t f : features) {
    if (f >= kNumResourceFeatures) {
      return Status::InvalidArgument(
          "window representations only cover resource features");
    }
  }
  if (size_ == 0) return Status::FailedPrecondition("window is empty");
  Matrix out(size_, features.size());
  const size_t start = size_ == capacity_ ? head_ : 0;
  for (size_t i = 0; i < size_; ++i) {
    const size_t slot = (start + i) % capacity_;
    for (size_t j = 0; j < features.size(); ++j) {
      out(i, j) = NormalizeValue(ctx_, features[j], ring_(slot, features[j]));
    }
  }
  return out;
}

Result<Matrix> SlidingWindow::HistFp(
    const std::vector<size_t>& features) const {
  if (features.empty()) return Status::InvalidArgument("no features selected");
  for (size_t f : features) {
    if (f >= kNumResourceFeatures) {
      return Status::InvalidArgument(
          "window representations only cover resource features");
    }
  }
  if (size_ == 0) return Status::FailedPrecondition("window is empty");
  const size_t bins = static_cast<size_t>(hist_bins_);
  Matrix out(bins, features.size());
  const double weight = 1.0 / static_cast<double>(size_);
  for (size_t j = 0; j < features.size(); ++j) {
    const std::vector<uint32_t>& counts = counts_[features[j]];
    // Replay count_b additions of 1/n per bin: a batch build adds the same
    // constant into each bin accumulator, so the float result depends only
    // on the count — summing count_b · weight in one multiply would NOT be
    // bit-identical, repeated addition is.
    double cum = 0.0;
    for (size_t b = 0; b < bins; ++b) {
      double mass = 0.0;
      for (uint32_t k = 0; k < counts[b]; ++k) mass += weight;
      cum += mass;
      out(b, j) = cum;
    }
  }
  return out;
}

}  // namespace wpred
