#ifndef WPRED_STREAM_WINDOW_H_
#define WPRED_STREAM_WINDOW_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "similarity/representation.h"

// Sliding telemetry window (DESIGN.md §13).
//
// The batch pipeline builds a workload's representation from a complete
// resource time-series. Under live traffic a representation must instead
// track the last W samples, and rebuilding it from scratch on every arrival
// is O(W·F) work per sample for state that changes by exactly one row.
// SlidingWindow keeps the incremental state — a ring of raw sample rows,
// per-feature normalised-histogram bin counts, and Welford running moments
// — so each Push costs O(F) and a representation emit costs O(W·F) only
// when somebody actually wants the matrix.
//
// The equivalence contract: Mts() and HistFp() are BIT-IDENTICAL to
// BuildMts / BuildHistFp over an experiment holding Rows(), at any fill
// level and after any number of evictions (StreamWindowTest pins this).
// For Mts that is immediate — both normalise the same cells with the same
// clamped NormalizeValue. For HistFp it holds because the batch builder
// accumulates the constant 1/n into each bin independently, so a bin's
// float value depends only on its COUNT, which the window maintains
// exactly; the emit replays count_b additions of 1/n per bin and then the
// same cumulative sum. Both paths route the edge policy through
// representation_internal::HistFpBin, so a sample sitting exactly on the
// running feature max lands in the last bin in both — and values far
// outside [lo, hi] (NormalizeValue clamps, but HistFpBin no longer trusts
// that) pin to the edge bins instead of tripping the int-cast UB the old
// post-cast clamp had.

namespace wpred {

/// Per-feature Welford running moments over the sliding window. Pushes use
/// Welford's update; evictions use the reverse downdate. Downdating is the
/// one place the window trades bits for speed: after evictions the moments
/// match a fresh two-pass/Welford recompute only to within accumulated
/// rounding (documented tolerance ~1e-9 relative in StreamWindowTest), so
/// they feed drift telemetry and gauges, never the representation
/// equivalence contract above.
class RunningMoments {
 public:
  void Push(double x);
  /// Removes one previously pushed value. The caller guarantees `x` is in
  /// the current multiset (the window ring makes this structural).
  void Pop(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Population variance (matches linalg Variance semantics; 0 for n < 1).
  double variance() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Fixed-capacity ring of resource-sample rows with incrementally
/// maintained representation state. Single-writer, like everything in the
/// streaming layer: Push must not race the emit accessors.
class SlidingWindow {
 public:
  /// Default-constructed windows are empty placeholders (capacity 0, every
  /// Push fails) so owners like IncrementalIngest can hold one by value and
  /// move a Create() result in.
  SlidingWindow() = default;

  /// `capacity` >= 2 rows of kNumResourceFeatures; `ctx` is the FROZEN
  /// normalisation of the fitted pipeline the stream feeds (windows never
  /// re-derive normalisation — a drifting context would silently re-scale
  /// history); `hist_bins` >= 2 matches the BuildHistFp default of 10.
  static Result<SlidingWindow> Create(size_t capacity,
                                      NormalizationContext ctx,
                                      int hist_bins = 10);

  /// Appends one sample row (size kNumResourceFeatures, all finite),
  /// evicting the oldest once full. O(features).
  Status Push(const Vector& resource_row);

  /// Rows currently held (== capacity once warm).
  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool full() const { return size_ == capacity_; }
  /// Total rows ever pushed (eviction does not decrement).
  uint64_t samples_pushed() const { return pushed_; }
  int hist_bins() const { return hist_bins_; }
  const NormalizationContext& context() const { return ctx_; }

  /// The window contents, oldest first — the series a batch rebuild would
  /// see. O(window).
  Matrix Rows() const;

  /// Normalised MTS over `features` (resource features only), bit-identical
  /// to BuildMts over Rows(). O(window · features).
  Result<Matrix> Mts(const std::vector<size_t>& features) const;

  /// Cumulative histogram fingerprint over `features` (resource features
  /// only — a streaming window carries resource telemetry; plan features
  /// enter through the refit corpus), bit-identical to BuildHistFp over
  /// Rows(). O(window + bins per feature).
  Result<Matrix> HistFp(const std::vector<size_t>& features) const;

  /// Welford running moments of catalog resource feature `f` over the raw
  /// (unnormalised) window values.
  const RunningMoments& moments(size_t feature) const {
    WPRED_CHECK_LT(feature, moments_.size());
    return moments_[feature];
  }

 private:
  size_t capacity_ = 0;
  int hist_bins_ = 0;
  NormalizationContext ctx_;

  Matrix ring_;        // capacity × kNumResourceFeatures
  size_t head_ = 0;    // next slot to write
  size_t size_ = 0;
  uint64_t pushed_ = 0;

  // counts_[f][b]: window samples of resource feature f whose normalised
  // value falls in histogram bin b. Incremented on push, decremented on
  // evict — the exact counts a batch histogram over Rows() would produce.
  std::vector<std::vector<uint32_t>> counts_;
  std::vector<RunningMoments> moments_;
};

}  // namespace wpred

#endif  // WPRED_STREAM_WINDOW_H_
