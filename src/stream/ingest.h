#ifndef WPRED_STREAM_INGEST_H_
#define WPRED_STREAM_INGEST_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/status.h"
#include "similarity/bcpd.h"
#include "similarity/query.h"
#include "similarity/representation.h"
#include "stream/window.h"
#include "telemetry/experiment.h"

// Incremental ingestion (DESIGN.md §13).
//
// IncrementalIngest turns the batch pipeline's frozen-corpus workflow into
// a live loop: telemetry samples append one at a time, the sliding window
// keeps the workload's representation current in O(features) per sample,
// per-feature online Bayesian change-point detectors watch the same stream,
// and a detected regime shift (a) re-segments the window, (b) appends the
// window's representation to a growing reference engine, and (c)
// requests a supervised model refit through a caller-installed sink — the
// serving layer wires that sink to PredictionService::RequestRefit
// (serve/stream_refit.h), which is the only place outside stream/ allowed
// to touch the refit hooks (lint layering rule).
//
// Threading: single-writer. One thread owns Observe and the accessors; the
// refit sink fires inside Observe on that thread and is expected to hand
// off (RequestRefit enqueues and returns). Concurrent serving reads never
// touch this object — they read immutable snapshots.
//
// Accordingly this module carries no thread-safety annotations
// (common/annotations.h): there is no mutex to name and no atomic that
// publishes — the ownership contract above is the whole story, and the
// concurrent machinery it hands off to (PredictionService, EnvelopeCache)
// is annotated and lint-checked at the hand-off points instead.

namespace wpred {

/// Default sliding window when IngestConfig::window_samples is 0 and
/// WPRED_STREAM_WINDOW is unset: 240 samples = 40 min at the paper's 10 s
/// cadence, a few expected regime lengths under the default hazard.
inline constexpr size_t kDefaultStreamWindowSamples = 240;

struct IngestConfig {
  /// Sliding-window length in samples. 0 resolves WPRED_STREAM_WINDOW from
  /// the environment (strict positive integer, >= 2; anything else fails
  /// Create) and falls back to kDefaultStreamWindowSamples when unset.
  size_t window_samples = 0;
  /// Histogram bins for the window fingerprint (matches BuildHistFp).
  int hist_bins = 10;
  /// Representation appended to the reference engine on a regime shift.
  Representation representation = Representation::kHistFp;
  /// Online change-point detection, one detector per selected resource
  /// feature over its normalised stream.
  BcpdParams bcpd;
  /// Debounce: samples that must pass after the stream start, and between
  /// consecutive triggers, before a change point may fire the expensive
  /// actions (refit request + reference append). Re-segmentation is never
  /// debounced.
  size_t min_refit_spacing = 64;
  /// Fire the refit sink on a (debounced) change point.
  bool refit_on_change_point = true;
  /// Threads for the reference engine's envelope extension; common/parallel
  /// semantics.
  int num_threads = 0;
};

/// What one Observe() did.
struct IngestUpdate {
  /// Global index of the ingested sample (0-based).
  uint64_t sample_index = 0;
  /// A detector reported a regime shift at this sample.
  bool change_point = false;
  /// Global sample index where the new regime begins (valid when
  /// change_point).
  size_t change_point_index = 0;
  /// The refit sink was invoked with a fresh corpus.
  bool refit_requested = false;
  /// The window's representation was appended to the reference engine.
  bool reference_appended = false;
};

class IncrementalIngest {
 public:
  /// `features`: the fitted pipeline's selected features — the resource
  /// subset drives the window representations and the change-point
  /// detectors (at least one resource feature required). `ctx`: the fitted
  /// pipeline's frozen normalisation. `prototype`: metadata template for
  /// the streamed workload (workload/SKU/terminals/plans/perf); refit
  /// corpora materialise the window into a copy of it, so plan features
  /// stay available to representations that need them.
  static Result<IncrementalIngest> Create(const IngestConfig& config,
                                          std::vector<size_t> features,
                                          NormalizationContext ctx,
                                          Experiment prototype);

  /// Receives the refit corpus (base corpus + the materialised window) when
  /// a regime shift requests a refit. Must hand off quickly — it runs
  /// inside Observe on the ingest thread.
  using RefitSink = std::function<void(ExperimentCorpus)>;
  void set_refit_sink(RefitSink sink) { refit_sink_ = std::move(sink); }

  /// Reference experiments included in every refit corpus (typically the
  /// corpus the serving pipeline was fitted on).
  void set_base_corpus(ExperimentCorpus base) { base_ = std::move(base); }

  /// Non-owning reference engine grown on regime shifts; nullptr detaches.
  /// The engine must outlive the ingest (or be detached first) and must not
  /// be queried concurrently with Observe (single-writer contract).
  void set_reference_engine(SimilarityQueryEngine* engine) {
    reference_engine_ = engine;
  }

  /// Ingests one telemetry sample (kNumResourceFeatures raw values):
  /// updates the window in O(features), feeds every detector, and on a
  /// detected regime shift re-segments, grows the reference engine, and
  /// (debounced) fires the refit sink.
  Result<IngestUpdate> Observe(const Vector& resource_sample);

  /// Window materialised into the prototype experiment — what a refit sees.
  Experiment WindowExperiment() const;

  /// Segments of the current window induced by the change points observed
  /// online, local to the window ([0, window size)). The trailing segment
  /// is never empty (SegmentsFromChangePoints boundary contract).
  std::vector<Segment> WindowSegments() const;

  const SlidingWindow& window() const { return window_; }
  const std::vector<size_t>& features() const { return features_; }
  uint64_t samples_ingested() const { return window_.samples_pushed(); }
  uint64_t change_points_detected() const { return change_points_; }
  uint64_t refits_requested() const { return refits_; }
  uint64_t reference_appends() const { return reference_appends_; }

 private:
  IncrementalIngest() = default;

  IngestConfig config_;
  std::vector<size_t> features_;           // full selection, catalog indices
  std::vector<size_t> resource_features_;  // resource subset, detector order
  Experiment prototype_;
  SlidingWindow window_;
  std::vector<OnlineBcpdDetector> detectors_;  // parallel to
                                               // resource_features_

  ExperimentCorpus base_;
  RefitSink refit_sink_;
  SimilarityQueryEngine* reference_engine_ = nullptr;

  // Global sample indices of observed change points, sorted unique; pruned
  // to the current window on each Observe.
  std::vector<size_t> recent_cps_;
  uint64_t change_points_ = 0;
  uint64_t refits_ = 0;
  uint64_t reference_appends_ = 0;
  // Sample index of the last refit request; refits wait min_refit_spacing
  // samples from here (and from stream start).
  uint64_t last_refit_sample_ = 0;
};

namespace stream_internal {

/// Strict parse of WPRED_STREAM_WINDOW: digits only, value >= 2. nullptr /
/// empty means "unset" (returns nullopt); anything else is an error so a
/// typo fails loudly at Create instead of silently running a default
/// window.
Result<std::optional<size_t>> ParseWindowEnv(const char* value);

}  // namespace stream_internal

}  // namespace wpred

#endif  // WPRED_STREAM_INGEST_H_
