#include "stream/ingest.h"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <utility>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "telemetry/feature_catalog.h"

namespace wpred {

namespace stream_internal {

Result<std::optional<size_t>> ParseWindowEnv(const char* value) {
  if (value == nullptr || *value == '\0') {
    return std::optional<size_t>(std::nullopt);
  }
  const std::string_view text(value);
  size_t parsed = 0;
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), parsed);
  if (ec != std::errc() || end != text.data() + text.size()) {
    return Status::InvalidArgument(
        StrFormat("WPRED_STREAM_WINDOW='%s' is not a positive integer",
                  value));
  }
  if (parsed < 2) {
    return Status::InvalidArgument(
        StrFormat("WPRED_STREAM_WINDOW=%zu is below the 2-sample minimum",
                  parsed));
  }
  return std::optional<size_t>(parsed);
}

}  // namespace stream_internal

Result<IncrementalIngest> IncrementalIngest::Create(
    const IngestConfig& config, std::vector<size_t> features,
    NormalizationContext ctx, Experiment prototype) {
  size_t window_samples = config.window_samples;
  if (window_samples == 0) {
    WPRED_ASSIGN_OR_RETURN(
        const std::optional<size_t> env,
        stream_internal::ParseWindowEnv(std::getenv("WPRED_STREAM_WINDOW")));
    window_samples = env.value_or(kDefaultStreamWindowSamples);
  }
  if (features.empty()) {
    return Status::InvalidArgument("ingest needs a non-empty feature set");
  }
  std::vector<size_t> resource_features;
  for (size_t f : features) {
    if (f >= kNumFeatures) {
      return Status::InvalidArgument(
          StrFormat("feature index %zu outside the catalog", f));
    }
    if (f < kNumResourceFeatures) resource_features.push_back(f);
  }
  if (resource_features.empty()) {
    return Status::InvalidArgument(
        "ingest needs at least one resource feature to watch the stream");
  }

  IncrementalIngest ingest;
  WPRED_ASSIGN_OR_RETURN(
      ingest.window_,
      SlidingWindow::Create(window_samples, std::move(ctx),
                            config.hist_bins));
  ingest.detectors_.reserve(resource_features.size());
  for (size_t i = 0; i < resource_features.size(); ++i) {
    WPRED_ASSIGN_OR_RETURN(OnlineBcpdDetector detector,
                           OnlineBcpdDetector::Create(config.bcpd));
    ingest.detectors_.push_back(std::move(detector));
  }
  ingest.config_ = config;
  ingest.config_.window_samples = window_samples;
  ingest.features_ = std::move(features);
  ingest.resource_features_ = std::move(resource_features);
  ingest.prototype_ = std::move(prototype);
  return ingest;
}

Result<IngestUpdate> IncrementalIngest::Observe(const Vector& resource_sample) {
  WPRED_RETURN_IF_ERROR(window_.Push(resource_sample));
  WPRED_COUNT_ADD("stream.samples_ingested", 1);

  IngestUpdate update;
  update.sample_index = window_.samples_pushed() - 1;

  // Every detector has seen exactly samples_pushed() values, so the indices
  // it emits are global sample indices — no re-basing needed.
  for (size_t i = 0; i < detectors_.size(); ++i) {
    const double x = NormalizeValue(window_.context(), resource_features_[i],
                                    resource_sample[resource_features_[i]]);
    const std::optional<size_t> cp = detectors_[i].Observe(x);
    if (!cp.has_value()) continue;
    if (!update.change_point || *cp < update.change_point_index) {
      update.change_point = true;
      update.change_point_index = *cp;
    }
    const auto it =
        std::lower_bound(recent_cps_.begin(), recent_cps_.end(), *cp);
    if (it == recent_cps_.end() || *it != *cp) {
      recent_cps_.insert(it, *cp);
      WPRED_COUNT_ADD("stream.change_points", 1);
      ++change_points_;
    }
  }

  // Drop change points that slid out of the window: a split at or before
  // the window's first sample no longer divides anything it holds.
  const size_t window_start = window_.samples_pushed() - window_.size();
  recent_cps_.erase(
      recent_cps_.begin(),
      std::lower_bound(recent_cps_.begin(), recent_cps_.end(),
                       window_start + 1));

  if (!update.change_point) return update;

  // Expensive reactions are debounced: a jittery detector re-confirming the
  // same shift must not stack refits or flood the reference engine.
  const uint64_t pushed = window_.samples_pushed();
  if (pushed - last_refit_sample_ < config_.min_refit_spacing) return update;
  const bool fire_refit = config_.refit_on_change_point &&
                          refit_sink_ != nullptr;
  const bool fire_append = reference_engine_ != nullptr;
  if (!fire_refit && !fire_append) return update;
  last_refit_sample_ = pushed;

  if (fire_append) {
    WPRED_ASSIGN_OR_RETURN(
        Matrix trace,
        BuildRepresentation(config_.representation, WindowExperiment(),
                            features_, window_.context()));
    std::vector<Matrix> traces;
    traces.push_back(std::move(trace));
    WPRED_RETURN_IF_ERROR(reference_engine_->AppendTraces(
        std::move(traces), config_.num_threads));
    update.reference_appended = true;
    ++reference_appends_;
    WPRED_COUNT_ADD("stream.reference_appends", 1);
  }

  if (fire_refit) {
    ExperimentCorpus corpus = base_;
    corpus.Add(WindowExperiment());
    refit_sink_(std::move(corpus));
    update.refit_requested = true;
    ++refits_;
    WPRED_COUNT_ADD("stream.refits_requested", 1);
  }
  return update;
}

Experiment IncrementalIngest::WindowExperiment() const {
  Experiment experiment = prototype_;
  experiment.resource.values = window_.Rows();
  return experiment;
}

std::vector<Segment> IncrementalIngest::WindowSegments() const {
  const size_t window_start = window_.samples_pushed() - window_.size();
  std::vector<size_t> local;
  local.reserve(recent_cps_.size());
  for (size_t cp : recent_cps_) {
    if (cp > window_start) local.push_back(cp - window_start);
  }
  return SegmentsFromChangePoints(window_.size(), local);
}

}  // namespace wpred
