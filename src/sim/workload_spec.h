#ifndef WPRED_SIM_WORKLOAD_SPEC_H_
#define WPRED_SIM_WORKLOAD_SPEC_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "telemetry/experiment.h"

namespace wpred {

/// Behavioural description of one transaction / query type, the unit the
/// engine simulator executes and the plan synthesizer describes.
struct TxnTypeSpec {
  std::string name;
  /// Relative frequency in the workload mix (weights need not sum to 1).
  double weight = 1.0;
  /// True for insert/update/delete transactions.
  bool is_write = false;
  /// Mean CPU demand per execution at reference core speed, in ms.
  double cpu_ms = 1.0;
  /// Fraction of the CPU demand that parallelises across cores (intra-query
  /// parallelism; ~0 for point transactions, ~0.9 for analytical scans).
  double parallel_fraction = 0.0;
  /// Maximum degree of parallelism the plan can exploit.
  int max_dop = 1;
  /// Logical page accesses per execution (buffer-pool lookups).
  double logical_ios = 1.0;
  /// Rows returned to the client.
  double rows_returned = 1.0;
  /// Rows read internally (scans may read far more than they return).
  double rows_read = 1.0;
  /// Average byte width of returned rows.
  double avg_row_bytes = 100.0;
  /// Cardinality of the dominant table accessed.
  double table_cardinality = 1e6;
  /// Locks acquired per execution (row/page locks; drives LOCK_REQ_ABS).
  double locks_acquired = 0.0;
  /// Sort/hash memory demand in MB; exceeding the grant spills to disk.
  double query_memory_mb = 0.0;
  /// Number of joins in the plan (drives compile cost and plan size).
  int join_count = 0;
};

/// A workload: metadata mirroring paper Table 1 plus the transaction mix.
struct WorkloadSpec {
  std::string name;
  WorkloadType type = WorkloadType::kMixed;
  int tables = 1;
  int columns = 1;
  int indexes = 0;
  /// Scale factor used when sizing the database (paper Section 2.1).
  double scale_factor = 1.0;
  /// Total database size in GB (chosen roughly equal across workloads).
  double db_size_gb = 10.0;
  /// Hot working set in GB; with less memory the buffer pool misses.
  double working_set_gb = 4.0;
  /// Zipf skew of data access (0 = uniform; YCSB uses 0.99).
  double access_skew = 0.0;
  /// Mean client think time between transactions, ms.
  double think_time_ms = 10.0;
  /// If true the workload executes serially regardless of terminals
  /// (TPC-H's behaviour in the paper).
  bool serial_only = false;

  std::vector<TxnTypeSpec> transactions;

  /// Fraction of read-only transactions by weight.
  double ReadOnlyFraction() const;
  /// Sum of transaction weights.
  double TotalWeight() const;
  /// Looks up a transaction type by name.
  Result<const TxnTypeSpec*> FindTransaction(const std::string& name) const;
};

/// Builders for the paper's five standardized benchmarks (Table 1) and the
/// production workload PW. Parameters mirror Table 1 metadata; behavioural
/// numbers are calibrated so workload classes separate the way the paper
/// observes (OLTP lock-heavy, OLAP IO/memory-heavy, YCSB both).
WorkloadSpec MakeTpcC();
WorkloadSpec MakeTpcH();
WorkloadSpec MakeTpcDs();
WorkloadSpec MakeTwitter();
WorkloadSpec MakeYcsb();

/// The mixed decision-support production workload of Section 5.2.3: 500+
/// query types, dominated by simple analytical queries over telemetry data.
WorkloadSpec MakeProductionWorkload();

/// All five standardized benchmark specs.
std::vector<WorkloadSpec> StandardBenchmarks();

/// Looks a builder up by workload name ("TPC-C", "TPC-H", "TPC-DS",
/// "Twitter", "YCSB", "PW").
Result<WorkloadSpec> WorkloadByName(const std::string& name);

}  // namespace wpred

#endif  // WPRED_SIM_WORKLOAD_SPEC_H_
