#include "sim/mva.h"

#include <cmath>

namespace wpred {

Result<MvaResult> SolveClosedNetwork(const std::vector<MvaStation>& stations,
                                     int customers, double think_time_s) {
  if (customers < 1) return Status::InvalidArgument("customers must be >= 1");
  if (think_time_s < 0.0) {
    return Status::InvalidArgument("think time must be non-negative");
  }
  for (const MvaStation& s : stations) {
    if (s.demand_s < 0.0) {
      return Status::InvalidArgument("negative demand at station " + s.name);
    }
    if (s.servers < 1) {
      return Status::InvalidArgument("servers must be >= 1 at station " + s.name);
    }
  }

  // Seidmann's transformation: a c-server station becomes a single-server
  // queueing stage with demand D/c plus a pure delay of D·(c-1)/c.
  const size_t n_stations = stations.size();
  std::vector<double> queue_demand(n_stations);
  double extra_delay = 0.0;
  for (size_t i = 0; i < n_stations; ++i) {
    queue_demand[i] = stations[i].demand_s / stations[i].servers;
    extra_delay += stations[i].demand_s * (stations[i].servers - 1) /
                   static_cast<double>(stations[i].servers);
  }

  // Exact MVA recursion over population.
  std::vector<double> q(n_stations, 0.0);
  double throughput = 0.0;
  double response = 0.0;
  for (int n = 1; n <= customers; ++n) {
    response = extra_delay;
    std::vector<double> r(n_stations);
    for (size_t i = 0; i < n_stations; ++i) {
      r[i] = queue_demand[i] * (1.0 + q[i]);
      response += r[i];
    }
    throughput = n / (think_time_s + response);
    for (size_t i = 0; i < n_stations; ++i) q[i] = throughput * r[i];
  }

  MvaResult result;
  result.throughput = throughput;
  result.response_time_s = response;
  result.utilization.resize(n_stations);
  result.queue_length = q;
  for (size_t i = 0; i < n_stations; ++i) {
    result.utilization[i] =
        throughput * stations[i].demand_s / stations[i].servers;
  }
  return result;
}

}  // namespace wpred
