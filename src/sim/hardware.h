#ifndef WPRED_SIM_HARDWARE_H_
#define WPRED_SIM_HARDWARE_H_

#include <string>
#include <vector>

namespace wpred {

/// A hardware configuration ("stock keeping unit", Section 6.1). The paper
/// varies the CPU count of a local SQL Server instance (2/4/8/16) plus an
/// 80-vcore setup for the production workload and two memory-variant SKUs
/// (S1/S2) for the multi-dimensional experiment.
struct Sku {
  std::string name;
  int cpus = 2;
  double memory_gb = 16.0;
  /// Aggregate IO bandwidth in MB/s of the storage subsystem.
  double io_mbps = 400.0;
  /// Relative single-core speed (1.0 = reference core).
  double core_speed = 1.0;

  bool operator==(const Sku& other) const = default;
};

/// The paper's default CPU-scaling ladder: 2, 4, 8, 16 CPUs with memory
/// scaled proportionally (8 GB per CPU).
std::vector<Sku> DefaultSkuLadder();

/// Builds a SKU with proportional memory (8 GB / CPU) and default storage.
Sku MakeCpuSku(int cpus);

/// The 80-virtual-core setup used for the production-workload experiment
/// (Section 5.2.3).
Sku MakeLargeSku();

/// S1 of Section 6.2.3: 4 CPUs, 32 GB.
Sku MakeS1();

/// S2 of Section 6.2.3: 8 CPUs, 64 GB.
Sku MakeS2();

}  // namespace wpred

#endif  // WPRED_SIM_HARDWARE_H_
