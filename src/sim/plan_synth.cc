#include "sim/plan_synth.h"

#include <algorithm>
#include <cmath>

#include "telemetry/feature_catalog.h"

namespace wpred {
namespace {

// Mean sort/hash memory demand of the workload mix, in MB. Feeds the
// available-grant estimate: memory-hungry mixes see smaller per-query grants.
double MeanQueryMemoryMb(const WorkloadSpec& workload) {
  double total_weight = 0.0;
  double acc = 0.0;
  for (const TxnTypeSpec& t : workload.transactions) {
    acc += t.weight * t.query_memory_mb;
    total_weight += t.weight;
  }
  return total_weight > 0.0 ? acc / total_weight : 0.0;
}

}  // namespace

Vector PlanFeatureBase(const WorkloadSpec& workload, const TxnTypeSpec& txn,
                       const Sku& sku) {
  Vector f(kNumPlanFeatures, 0.0);
  auto set = [&f](FeatureId id, double value) {
    f[IndexOf(id) - kNumResourceFeatures] = value;
  };

  const double mem_mb = sku.memory_gb * 1024.0;
  const double mean_demand_mb = MeanQueryMemoryMb(workload);
  // Optimizer's estimate of the memory available to one query: a slice of
  // the buffer-adjacent workspace, shrunk when the mix is memory hungry.
  const double available_grant_kb =
      0.10 * mem_mb * 1024.0 / (1.0 + 0.01 * mean_demand_mb);

  const double desired_kb = txn.query_memory_mb * 1024.0;
  const double granted_kb = std::min(desired_kb, available_grant_kb);

  // SQL Server-style cost units: ~0.003125 per sequential page, CPU scaled
  // so a millisecond of reference-core work costs ~0.04 units.
  const double estimate_io = txn.logical_ios * 0.003125;
  const double estimate_cpu = txn.cpu_ms * 0.04;

  const double compile_cpu_ms =
      0.5 + 1.6 * txn.join_count + 0.004 * workload.columns;

  set(FeatureId::kStatementEstRows, txn.rows_returned);
  set(FeatureId::kStatementSubTreeCost, estimate_io + estimate_cpu);
  set(FeatureId::kCompileCpu, compile_cpu_ms);
  set(FeatureId::kTableCardinality, txn.table_cardinality);
  set(FeatureId::kSerialDesiredMemory, desired_kb);
  set(FeatureId::kSerialRequiredMemory, 0.25 * desired_kb);
  set(FeatureId::kMaxCompileMemory, 512.0 + 256.0 * txn.join_count);
  set(FeatureId::kEstimateRebinds, std::max(0, txn.join_count - 2) * 0.1);
  set(FeatureId::kEstimateRewinds, std::max(0, txn.join_count - 2) * 0.05);
  set(FeatureId::kEstimatedPagesCached, txn.logical_ios * 0.8);
  set(FeatureId::kEstimatedAvailableDegreeOfParallelism,
      std::min(sku.cpus, std::max(1, txn.max_dop)));
  set(FeatureId::kEstimatedAvailableMemoryGrant, available_grant_kb);
  set(FeatureId::kCachedPlanSize,
      16.0 + 24.0 * txn.join_count + 0.05 * workload.columns);
  set(FeatureId::kAvgRowSize, txn.avg_row_bytes);
  set(FeatureId::kCompileMemory, 0.6 * (512.0 + 256.0 * txn.join_count));
  set(FeatureId::kEstimateRows, txn.rows_returned * (1.0 + 0.5 * txn.join_count));
  set(FeatureId::kEstimateIo, estimate_io);
  set(FeatureId::kCompileTime, compile_cpu_ms * 1.2);
  set(FeatureId::kGrantedMemory, granted_kb);
  set(FeatureId::kEstimateCpu, estimate_cpu);
  set(FeatureId::kMaxUsedMemory, 0.8 * granted_kb);
  set(FeatureId::kEstimatedRowsRead, txn.rows_read);
  return f;
}

Result<PlanStats> SynthesizePlanStats(const WorkloadSpec& workload,
                                      const Sku& sku, int observations_per_type,
                                      Rng& rng) {
  if (observations_per_type < 1) {
    return Status::InvalidArgument("observations_per_type must be >= 1");
  }
  if (workload.transactions.empty()) {
    return Status::InvalidArgument("workload has no transaction types");
  }

  // One multiplicative run-level drift per feature (cloud variability is
  // correlated within a run), plus per-observation jitter. Cardinalities and
  // row widths are catalog facts, so they drift less than estimates.
  Vector run_drift(kNumPlanFeatures);
  for (size_t c = 0; c < kNumPlanFeatures; ++c) {
    run_drift[c] = rng.LogNormalMedian(1.0, 0.07);
  }

  PlanStats stats;
  stats.values = Matrix(workload.transactions.size() *
                            static_cast<size_t>(observations_per_type),
                        kNumPlanFeatures);
  size_t row = 0;
  for (const TxnTypeSpec& txn : workload.transactions) {
    const Vector base = PlanFeatureBase(workload, txn, sku);
    for (int obs = 0; obs < observations_per_type; ++obs) {
      for (size_t c = 0; c < kNumPlanFeatures; ++c) {
        const FeatureId id = FeatureFromIndex(kNumResourceFeatures + c);
        double value = base[c] * run_drift[c];
        const bool is_estimate =
            id == FeatureId::kStatementEstRows ||
            id == FeatureId::kEstimateRows || id == FeatureId::kEstimateIo ||
            id == FeatureId::kEstimateCpu ||
            id == FeatureId::kEstimatedRowsRead ||
            id == FeatureId::kEstimatedPagesCached;
        const double sigma = is_estimate ? 0.10 : 0.04;
        if (value > 0.0) {
          value *= rng.LogNormalMedian(1.0, sigma);
        } else {
          // Near-zero features (rebinds/rewinds for simple plans) get tiny
          // additive noise so they are present but uninformative.
          value += std::fabs(rng.Gaussian(0.0, 0.01));
        }
        stats.values(row, c) = value;
      }
      stats.query_names.push_back(txn.name);
      ++row;
    }
  }
  return stats;
}

}  // namespace wpred
