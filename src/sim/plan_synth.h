#ifndef WPRED_SIM_PLAN_SYNTH_H_
#define WPRED_SIM_PLAN_SYNTH_H_

#include "common/rng.h"
#include "common/status.h"
#include "sim/hardware.h"
#include "sim/workload_spec.h"
#include "telemetry/experiment.h"

namespace wpred {

/// Synthesizes the 22 query-plan statistics of paper Table 2 for every
/// transaction type of a workload on a given SKU, producing
/// `observations_per_type` noisy observations per type (the paper collects
/// three per query). Stands in for SQL Server's `SET STATISTICS XML` output:
/// values come from an optimizer-style cost model over the transaction spec
/// (rows, IO, joins, memory demand) plus hardware-dependent terms (available
/// DOP, memory grants), perturbed by per-run and per-observation noise.
Result<PlanStats> SynthesizePlanStats(const WorkloadSpec& workload,
                                      const Sku& sku, int observations_per_type,
                                      Rng& rng);

/// Deterministic (noise-free) plan feature vector for one transaction type;
/// exposed for tests and the cost-model documentation.
Vector PlanFeatureBase(const WorkloadSpec& workload, const TxnTypeSpec& txn,
                       const Sku& sku);

}  // namespace wpred

#endif  // WPRED_SIM_PLAN_SYNTH_H_
