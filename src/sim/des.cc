#include "sim/des.h"

#include <utility>

namespace wpred {

void Simulator::Schedule(double delay, Callback fn) {
  WPRED_CHECK_GE(delay, 0.0);
  ScheduleAt(now_ + delay, std::move(fn));
}

void Simulator::ScheduleAt(double time, Callback fn) {
  WPRED_CHECK_GE(time, now_);
  queue_.push(Event{time, next_seq_++, std::move(fn)});
}

void Simulator::RunUntil(double until) {
  while (!queue_.empty() && queue_.top().time <= until) {
    // priority_queue::top() is const; move the callback out via const_cast
    // before pop (safe: the element is removed immediately after).
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    ++processed_;
    event.fn();
  }
  if (now_ < until) now_ = until;
}

FcfsStation::FcfsStation(Simulator* sim, int servers)
    : sim_(sim), servers_(servers) {
  WPRED_CHECK(sim != nullptr);
  WPRED_CHECK_GE(servers, 1);
}

void FcfsStation::Submit(double service_time, Simulator::Callback on_done) {
  WPRED_CHECK_GE(service_time, 0.0);
  Job job{service_time, sim_->now(), std::move(on_done)};
  if (busy_ < servers_) {
    StartService(std::move(job));
  } else {
    waiting_.push_back(std::move(job));
  }
}

void FcfsStation::StartService(Job job) {
  Accumulate();
  ++busy_;
  total_wait_time_ += sim_->now() - job.enqueue_time;
  const double service = job.service_time;
  // Move the callback into the completion event.
  auto on_done = std::move(job.on_done);
  sim_->Schedule(service, [this, service, on_done = std::move(on_done)]() {
    Accumulate();
    --busy_;
    ++completed_;
    total_service_time_ += service;
    if (!waiting_.empty()) {
      Job next = std::move(waiting_.front());
      waiting_.pop_front();
      StartService(std::move(next));
    }
    on_done();
  });
}

void FcfsStation::Accumulate() {
  busy_integral_ += busy_ * (sim_->now() - last_change_);
  last_change_ = sim_->now();
}

double FcfsStation::BusyIntegral() const {
  return busy_integral_ + busy_ * (sim_->now() - last_change_);
}

}  // namespace wpred
