#ifndef WPRED_SIM_MVA_H_
#define WPRED_SIM_MVA_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace wpred {

/// One service station of a closed queueing network.
struct MvaStation {
  std::string name;
  /// Total service demand per customer visit cycle, in seconds.
  double demand_s = 0.0;
  /// Number of identical servers (>= 1). Multi-server stations are handled
  /// with Seidmann's approximation (D/c queueing + (c-1)/c·D delay).
  int servers = 1;
};

/// Solution of the closed network at the requested population.
struct MvaResult {
  double throughput = 0.0;       // customers per second
  double response_time_s = 0.0;  // mean residence time excluding think time
  std::vector<double> utilization;   // per station, per server, in [0, 1]
  std::vector<double> queue_length;  // mean customers at each station
};

/// Exact Mean Value Analysis of a closed product-form queueing network with
/// `customers` clients and a think-time delay of `think_time_s` seconds.
/// Provides the analytic cross-check for the discrete-event engine
/// (tests/sim_test.cc) and powers the capacity-planner example.
Result<MvaResult> SolveClosedNetwork(const std::vector<MvaStation>& stations,
                                     int customers, double think_time_s);

}  // namespace wpred

#endif  // WPRED_SIM_MVA_H_
