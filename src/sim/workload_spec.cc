#include "sim/workload_spec.h"

#include <cmath>

#include "common/string_util.h"

namespace wpred {

double WorkloadSpec::ReadOnlyFraction() const {
  double total = 0.0;
  double read_only = 0.0;
  for (const TxnTypeSpec& t : transactions) {
    total += t.weight;
    if (!t.is_write) read_only += t.weight;
  }
  return total > 0.0 ? read_only / total : 0.0;
}

double WorkloadSpec::TotalWeight() const {
  double total = 0.0;
  for (const TxnTypeSpec& t : transactions) total += t.weight;
  return total;
}

Result<const TxnTypeSpec*> WorkloadSpec::FindTransaction(
    const std::string& name) const {
  for (const TxnTypeSpec& t : transactions) {
    if (t.name == name) return &t;
  }
  return Status::NotFound("no transaction type " + name + " in " +
                          this->name);
}

namespace {

// Deterministic pseudo-variation in [0, 1) used to diversify
// programmatically generated query types (TPC-H/TPC-DS/PW) without pulling
// in an Rng: spec construction must be bit-stable across calls.
double Vary(int i, int salt) {
  uint32_t x = static_cast<uint32_t>(i * 2654435761u + salt * 40503u + 12345u);
  x ^= x >> 13;
  x *= 2246822519u;
  x ^= x >> 11;
  return (x & 0xffffffu) / static_cast<double>(0x1000000u);
}

}  // namespace

WorkloadSpec MakeTpcC() {
  WorkloadSpec w;
  w.name = "TPC-C";
  w.type = WorkloadType::kTransactional;
  w.tables = 9;
  w.columns = 92;
  w.indexes = 1;
  w.scale_factor = 100.0;
  w.db_size_gb = 10.0;
  w.working_set_gb = 6.0;
  w.access_skew = 0.6;
  w.think_time_ms = 8.0;

  TxnTypeSpec new_order{.name = "NewOrder",
                        .weight = 45,
                        .is_write = true,
                        .cpu_ms = 8.0,
                        .logical_ios = 40,
                        .rows_returned = 10,
                        .rows_read = 60,
                        .avg_row_bytes = 220,
                        .table_cardinality = 3.0e7,
                        .locks_acquired = 15,
                        .query_memory_mb = 0.5,
                        .join_count = 2};
  TxnTypeSpec payment{.name = "Payment",
                      .weight = 43,
                      .is_write = true,
                      .cpu_ms = 3.0,
                      .logical_ios = 12,
                      .rows_returned = 1,
                      .rows_read = 5,
                      .avg_row_bytes = 180,
                      .table_cardinality = 3.0e6,
                      .locks_acquired = 6,
                      .query_memory_mb = 0.2,
                      .join_count = 1};
  TxnTypeSpec order_status{.name = "OrderStatus",
                           .weight = 4,
                           .is_write = false,
                           .cpu_ms = 3.0,
                           .logical_ios = 15,
                           .rows_returned = 12,
                           .rows_read = 25,
                           .avg_row_bytes = 160,
                           .table_cardinality = 3.0e6,
                           .locks_acquired = 2,
                           .query_memory_mb = 0.2,
                           .join_count = 1};
  TxnTypeSpec delivery{.name = "Delivery",
                       .weight = 4,
                       .is_write = true,
                       .cpu_ms = 12.0,
                       .logical_ios = 60,
                       .rows_returned = 10,
                       .rows_read = 120,
                       .avg_row_bytes = 120,
                       .table_cardinality = 3.0e7,
                       .locks_acquired = 40,
                       .query_memory_mb = 0.5,
                       .join_count = 2};
  TxnTypeSpec stock_level{.name = "StockLevel",
                          .weight = 4,
                          .is_write = false,
                          .cpu_ms = 8.0,
                          .logical_ios = 80,
                          .rows_returned = 1,
                          .rows_read = 400,
                          .avg_row_bytes = 60,
                          .table_cardinality = 1.0e7,
                          .locks_acquired = 4,
                          .query_memory_mb = 2.0,
                          .join_count = 2};
  w.transactions = {new_order, payment, order_status, delivery, stock_level};
  return w;
}

WorkloadSpec MakeTpcH() {
  WorkloadSpec w;
  w.name = "TPC-H";
  w.type = WorkloadType::kAnalytical;
  w.tables = 8;
  w.columns = 61;
  w.indexes = 23;
  w.scale_factor = 10.0;
  w.db_size_gb = 10.0;
  w.working_set_gb = 9.0;
  w.access_skew = 0.0;
  w.think_time_ms = 0.0;
  w.serial_only = true;  // TPC-H always runs serially in the paper.

  w.transactions.reserve(22);
  for (int q = 1; q <= 22; ++q) {
    TxnTypeSpec t;
    t.name = StrFormat("Q%d", q);
    t.weight = 1.0;
    t.is_write = false;
    // Heavy scan/join/aggregate queries; 0.8–6.5 s of CPU at one core.
    t.cpu_ms = 800.0 + 5700.0 * Vary(q, 1);
    t.parallel_fraction = 0.85 + 0.1 * Vary(q, 2);
    t.max_dop = 16;
    // Large scans: up to most of the 10 GB database (8 KB pages).
    t.logical_ios = 2.0e5 + 8.0e5 * Vary(q, 3);
    t.rows_returned = 1.0 + 180.0 * Vary(q, 4);
    t.rows_read = 5.0e6 + 5.5e7 * Vary(q, 5);
    t.avg_row_bytes = 400.0 + 1200.0 * Vary(q, 6);  // wide aggregate rows
    t.table_cardinality = 6.0e7;                    // lineitem at SF 10
    t.locks_acquired = 0.0;
    // Sort/hash demand: spills on small-memory SKUs.
    t.query_memory_mb = 300.0 + 1700.0 * Vary(q, 7);
    t.join_count = 2 + static_cast<int>(6.0 * Vary(q, 8));
    w.transactions.push_back(t);
  }
  return w;
}

WorkloadSpec MakeTpcDs() {
  WorkloadSpec w;
  w.name = "TPC-DS";
  w.type = WorkloadType::kAnalytical;
  w.tables = 24;
  w.columns = 425;
  w.indexes = 0;
  w.scale_factor = 1.0;
  w.db_size_gb = 3.0;
  w.working_set_gb = 2.5;
  w.access_skew = 0.0;
  w.think_time_ms = 0.0;
  w.serial_only = true;

  w.transactions.reserve(99);
  for (int q = 1; q <= 99; ++q) {
    TxnTypeSpec t;
    t.name = StrFormat("DSQ%d", q);
    t.weight = 1.0;
    t.is_write = false;
    t.cpu_ms = 250.0 + 3500.0 * Vary(q, 11);
    t.parallel_fraction = 0.8 + 0.15 * Vary(q, 12);
    t.max_dop = 16;
    t.logical_ios = 4.0e4 + 3.0e5 * Vary(q, 13);
    t.rows_returned = 10.0 + 400.0 * Vary(q, 14);
    t.rows_read = 1.0e6 + 1.2e7 * Vary(q, 15);
    t.avg_row_bytes = 300.0 + 900.0 * Vary(q, 16);
    t.table_cardinality = 6.0e6;
    t.locks_acquired = 0.0;
    t.query_memory_mb = 100.0 + 900.0 * Vary(q, 17);
    t.join_count = 3 + static_cast<int>(8.0 * Vary(q, 18));
    w.transactions.push_back(t);
  }
  return w;
}

WorkloadSpec MakeTwitter() {
  WorkloadSpec w;
  w.name = "Twitter";
  // 1% writes; the paper classifies Twitter as analytical for all practical
  // purposes because point-lookup reads dominate.
  w.type = WorkloadType::kAnalytical;
  w.tables = 5;
  w.columns = 18;
  w.indexes = 4;
  w.scale_factor = 1600.0;
  w.db_size_gb = 10.0;
  w.working_set_gb = 2.0;
  w.access_skew = 0.8;
  w.think_time_ms = 5.0;

  TxnTypeSpec get_tweet{.name = "GetTweet",
                        .weight = 35,
                        .is_write = false,
                        .cpu_ms = 0.2,
                        .logical_ios = 2,
                        .rows_returned = 1,
                        .rows_read = 1,
                        .avg_row_bytes = 140,
                        .table_cardinality = 2.0e7,
                        .locks_acquired = 1,
                        .query_memory_mb = 0.05,
                        .join_count = 0};
  TxnTypeSpec get_following{.name = "GetTweetsFromFollowing",
                            .weight = 25,
                            .is_write = false,
                            .cpu_ms = 0.8,
                            .logical_ios = 12,
                            .rows_returned = 20,
                            .rows_read = 40,
                            .avg_row_bytes = 140,
                            .table_cardinality = 2.0e7,
                            .locks_acquired = 2,
                            .query_memory_mb = 0.2,
                            .join_count = 1};
  TxnTypeSpec get_followers{.name = "GetFollowers",
                            .weight = 20,
                            .is_write = false,
                            .cpu_ms = 0.5,
                            .logical_ios = 8,
                            .rows_returned = 50,
                            .rows_read = 80,
                            .avg_row_bytes = 40,
                            .table_cardinality = 5.0e7,
                            .locks_acquired = 2,
                            .query_memory_mb = 0.1,
                            .join_count = 1};
  TxnTypeSpec get_user_tweets{.name = "GetUserTweets",
                              .weight = 19,
                              .is_write = false,
                              .cpu_ms = 0.5,
                              .logical_ios = 6,
                              .rows_returned = 20,
                              .rows_read = 30,
                              .avg_row_bytes = 140,
                              .table_cardinality = 2.0e7,
                              .locks_acquired = 2,
                              .query_memory_mb = 0.1,
                              .join_count = 0};
  TxnTypeSpec insert_tweet{.name = "InsertTweet",
                           .weight = 1,
                           .is_write = true,
                           .cpu_ms = 0.4,
                           .logical_ios = 4,
                           .rows_returned = 1,
                           .rows_read = 1,
                           .avg_row_bytes = 140,
                           .table_cardinality = 2.0e7,
                           .locks_acquired = 3,
                           .query_memory_mb = 0.05,
                           .join_count = 0};
  w.transactions = {get_tweet, get_following, get_followers, get_user_tweets,
                    insert_tweet};
  return w;
}

WorkloadSpec MakeYcsb() {
  WorkloadSpec w;
  w.name = "YCSB";
  w.type = WorkloadType::kMixed;
  w.tables = 1;
  w.columns = 11;
  w.indexes = 0;
  w.scale_factor = 3200.0;
  w.db_size_gb = 10.0;
  w.working_set_gb = 8.0;
  w.access_skew = 0.99;  // paper: skew factor 0.99
  w.think_time_ms = 2.0;

  TxnTypeSpec read{.name = "Read",
                   .weight = 30,
                   .is_write = false,
                   .cpu_ms = 0.9,
                   .logical_ios = 4,
                   .rows_returned = 1,
                   .rows_read = 1,
                   .avg_row_bytes = 1100,
                   .table_cardinality = 3.2e7,
                   .locks_acquired = 1,
                   .query_memory_mb = 0.05,
                   .join_count = 0};
  TxnTypeSpec scan{.name = "Scan",
                   .weight = 10,
                   .is_write = false,
                   .cpu_ms = 3.6,
                   .logical_ios = 50,  // no index: range scans read widely
                   .rows_returned = 50,
                   .rows_read = 900,
                   .avg_row_bytes = 1100,
                   .table_cardinality = 3.2e7,
                   .locks_acquired = 2,
                   .query_memory_mb = 8.0,
                   .join_count = 0};
  TxnTypeSpec insert{.name = "Insert",
                     .weight = 15,
                     .is_write = true,
                     .cpu_ms = 1.2,
                     .logical_ios = 6,
                     .rows_returned = 1,
                     .rows_read = 1,
                     .avg_row_bytes = 1100,
                     .table_cardinality = 3.2e7,
                     .locks_acquired = 4,
                     .query_memory_mb = 0.05,
                     .join_count = 0};
  TxnTypeSpec update{.name = "Update",
                     .weight = 25,
                     .is_write = true,
                     .cpu_ms = 1.2,
                     .logical_ios = 5,
                     .rows_returned = 1,
                     .rows_read = 1,
                     .avg_row_bytes = 1100,
                     .table_cardinality = 3.2e7,
                     .locks_acquired = 4,
                     .query_memory_mb = 0.05,
                     .join_count = 0};
  TxnTypeSpec remove{.name = "Delete",
                     .weight = 5,
                     .is_write = true,
                     .cpu_ms = 1.2,
                     .logical_ios = 5,
                     .rows_returned = 1,
                     .rows_read = 1,
                     .avg_row_bytes = 1100,
                     .table_cardinality = 3.2e7,
                     .locks_acquired = 4,
                     .query_memory_mb = 0.05,
                     .join_count = 0};
  TxnTypeSpec rmw{.name = "ReadModifyWrite",
                  .weight = 15,
                  .is_write = true,
                  .cpu_ms = 2.1,
                  .logical_ios = 8,
                  .rows_returned = 1,
                  .rows_read = 2,
                  .avg_row_bytes = 1100,
                  .table_cardinality = 3.2e7,
                  .locks_acquired = 5,
                  .query_memory_mb = 0.05,
                  .join_count = 0};
  w.transactions = {read, scan, insert, update, remove, rmw};
  return w;
}

WorkloadSpec MakeProductionWorkload() {
  WorkloadSpec w;
  w.name = "PW";
  w.type = WorkloadType::kMixed;
  // Table 1 lists the PW schema as undisclosed; the simulator still needs
  // plausible structure for plan synthesis.
  w.tables = 40;
  w.columns = 600;
  w.indexes = 30;
  w.scale_factor = 1.0;
  w.db_size_gb = 12.0;
  w.working_set_gb = 6.0;
  w.access_skew = 0.3;
  w.think_time_ms = 2.0;

  // 520 query types: dominated by simple analytical queries over telemetry
  // tables (Section 5.2.3 confirms PW aligns with TPC-H), plus a small
  // ingest tail of writes.
  w.transactions.reserve(520);
  for (int q = 0; q < 470; ++q) {
    TxnTypeSpec t;
    t.name = StrFormat("PWQ%d", q);
    t.weight = 0.9 + 0.3 * Vary(q, 21);
    t.is_write = false;
    // Simple analytical scans/aggregations over telemetry tables; the
    // profile sits in TPC-H's range (fewer joins, smaller scans) rather
    // than TPC-DS's (wide star-schema plans) or Twitter's (point lookups),
    // which is what Section 5.2.3's manual inspection found.
    t.cpu_ms = 700.0 + 4800.0 * Vary(q, 22);
    t.parallel_fraction = 0.82 + 0.12 * Vary(q, 23);
    t.max_dop = 16;
    t.logical_ios = 1.8e5 + 7.0e5 * Vary(q, 24);
    t.rows_returned = 1.0 + 170.0 * Vary(q, 25);
    t.rows_read = 5.0e6 + 4.5e7 * Vary(q, 26);
    t.avg_row_bytes = 400.0 + 1100.0 * Vary(q, 27);
    t.table_cardinality = 5.0e7;
    t.locks_acquired = 0.0;
    t.query_memory_mb = 280.0 + 1500.0 * Vary(q, 28);
    t.join_count = 2 + static_cast<int>(5.0 * Vary(q, 29));
    w.transactions.push_back(t);
  }
  for (int q = 0; q < 50; ++q) {
    TxnTypeSpec t;
    t.name = StrFormat("PWIngest%d", q);
    t.weight = 0.8;
    t.is_write = true;
    t.cpu_ms = 1.0 + 4.0 * Vary(q, 31);
    t.logical_ios = 10.0 + 40.0 * Vary(q, 32);
    t.rows_returned = 1.0;
    t.rows_read = 10.0 + 100.0 * Vary(q, 33);
    t.avg_row_bytes = 300.0;
    t.table_cardinality = 2.0e7;
    t.locks_acquired = 5.0 + 10.0 * Vary(q, 34);
    t.query_memory_mb = 0.5;
    t.join_count = 0;
    w.transactions.push_back(t);
  }
  return w;
}

std::vector<WorkloadSpec> StandardBenchmarks() {
  return {MakeTpcC(), MakeTpcH(), MakeTpcDs(), MakeTwitter(), MakeYcsb()};
}

Result<WorkloadSpec> WorkloadByName(const std::string& name) {
  if (name == "TPC-C") return MakeTpcC();
  if (name == "TPC-H") return MakeTpcH();
  if (name == "TPC-DS") return MakeTpcDs();
  if (name == "Twitter") return MakeTwitter();
  if (name == "YCSB") return MakeYcsb();
  if (name == "PW") return MakeProductionWorkload();
  return Status::NotFound("unknown workload: " + name);
}

}  // namespace wpred
