#include "sim/hardware.h"

#include "common/string_util.h"

namespace wpred {

Sku MakeCpuSku(int cpus) {
  Sku sku;
  sku.name = StrFormat("cpu%d", cpus);
  sku.cpus = cpus;
  sku.memory_gb = 8.0 * cpus;
  sku.io_mbps = 400.0;
  sku.core_speed = 1.0;
  return sku;
}

std::vector<Sku> DefaultSkuLadder() {
  return {MakeCpuSku(2), MakeCpuSku(4), MakeCpuSku(8), MakeCpuSku(16)};
}

Sku MakeLargeSku() {
  Sku sku = MakeCpuSku(80);
  sku.name = "vcore80";
  sku.io_mbps = 1600.0;
  return sku;
}

Sku MakeS1() {
  Sku sku;
  sku.name = "S1";
  sku.cpus = 4;
  sku.memory_gb = 32.0;
  return sku;
}

Sku MakeS2() {
  Sku sku;
  sku.name = "S2";
  sku.cpus = 8;
  sku.memory_gb = 64.0;
  return sku;
}

}  // namespace wpred
