#ifndef WPRED_SIM_DES_H_
#define WPRED_SIM_DES_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.h"

namespace wpred {

/// Minimal discrete-event simulation kernel: a clock plus an ordered event
/// queue. Ties break by insertion order so runs are deterministic.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  void Schedule(double delay, Callback fn);

  /// Schedules `fn` at absolute time `time` (>= now).
  void ScheduleAt(double time, Callback fn);

  double now() const { return now_; }
  uint64_t processed_events() const { return processed_; }
  bool empty() const { return queue_.empty(); }

  /// Processes events in time order until the queue drains or the next
  /// event's time exceeds `until`; the clock ends at min(until, last event).
  void RunUntil(double until);

 private:
  struct Event {
    double time;
    uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

/// Multi-server FCFS queueing station (c servers, one shared queue). Jobs
/// occupy exactly one server for their service time; excess jobs wait in
/// arrival order. Tracks the busy-server time integral so callers can read
/// utilisation over sampling windows, total queueing (wait) time, and
/// completed-job counts.
class FcfsStation {
 public:
  FcfsStation(Simulator* sim, int servers);

  /// Submits a job; `on_done` fires when its service completes.
  void Submit(double service_time, Simulator::Callback on_done);

  int servers() const { return servers_; }
  int busy() const { return busy_; }
  size_t queue_length() const { return waiting_.size(); }
  uint64_t completed() const { return completed_; }

  /// ∫ busy(t) dt since construction, updated through `now`.
  double BusyIntegral() const;
  /// Total time jobs spent waiting in queue (not in service).
  double total_wait_time() const { return total_wait_time_; }
  /// Total service time of completed jobs.
  double total_service_time() const { return total_service_time_; }

 private:
  struct Job {
    double service_time;
    double enqueue_time;
    Simulator::Callback on_done;
  };

  void StartService(Job job);
  void Accumulate();

  Simulator* sim_;
  int servers_;
  int busy_ = 0;
  uint64_t completed_ = 0;
  double busy_integral_ = 0.0;
  double last_change_ = 0.0;
  double total_wait_time_ = 0.0;
  double total_service_time_ = 0.0;
  std::deque<Job> waiting_;
};

}  // namespace wpred

#endif  // WPRED_SIM_DES_H_
