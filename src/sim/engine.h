#ifndef WPRED_SIM_ENGINE_H_
#define WPRED_SIM_ENGINE_H_

#include "common/rng.h"
#include "common/status.h"
#include "sim/hardware.h"
#include "sim/workload_spec.h"
#include "telemetry/experiment.h"

namespace wpred {

/// Knobs of one simulated experiment run. Defaults compress the paper's
/// 1-hour runs to 3 simulated minutes while keeping the paper's 360 resource
/// samples per run (Section 2.1), so observation-count-driven effects carry
/// over while each run stays fast.
struct SimConfig {
  double duration_s = 180.0;
  double sample_period_s = 0.5;
  uint64_t seed = 42;
  /// Time-of-day group (paper Section 6.2): shifts VM speed/IO multipliers.
  int data_group = 0;
  /// Plan observations synthesized per query type (paper: 3).
  int plan_observations = 3;
  /// Checkpoint cadence in simulated seconds: dirty pages accumulated by
  /// write transactions are flushed in a burst, producing the periodic IO
  /// spikes real engines show (0 disables checkpointing).
  double checkpoint_interval_s = 30.0;
};

/// One experiment request: workload × SKU × concurrency × repetition.
struct RunRequest {
  WorkloadSpec workload;
  Sku sku;
  int terminals = 4;
  int run_id = 0;
  SimConfig config;
};

/// Executes one experiment on the discrete-event database-engine simulator
/// and returns the collected telemetry. This is the stand-in for the paper's
/// SQL Server + BenchBase + perf apparatus (see DESIGN.md §1): closed-loop
/// terminals drive the transaction mix through a lock manager, a multi-core
/// FCFS CPU station (with fork-join intra-query parallelism), a buffer pool
/// with cold-start warm-up, memory grants with spill-to-disk, and an IO
/// station. Resource features are sampled on the configured cadence; plan
/// statistics come from the plan synthesizer; run-to-run and time-of-day
/// variability enter through seeded noise and data-group multipliers.
Result<Experiment> RunExperiment(const RunRequest& request);

/// Buffer-pool hit probability at simulation time `t` for a workload on a
/// SKU (exponential warm-up towards the coverage-determined plateau).
/// Exposed for tests and the capacity-planner example.
double BufferHitRate(const WorkloadSpec& workload, const Sku& sku, double t);

/// Per-query memory grant cap in MB for a SKU under `terminals` concurrent
/// clients. Queries demanding more than this spill to disk.
double MemoryGrantCapMb(const Sku& sku, int terminals);

}  // namespace wpred

#endif  // WPRED_SIM_ENGINE_H_
