#include "sim/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>

#include "linalg/stats.h"
#include "obs/metrics.h"
#include "sim/des.h"
#include "sim/plan_synth.h"
#include "telemetry/feature_catalog.h"

namespace wpred {
namespace {

// Time-of-day multipliers (paper Section 6.2: three daily execution slots
// with visibly different VM performance).
constexpr double kGroupCpuSpeed[3] = {1.0, 0.93, 1.06};
constexpr double kGroupIoSpeed[3] = {1.0, 0.96, 1.03};

// Buffer-pool warm-up time constant (seconds of simulated time).
constexpr double kWarmupTauS = 25.0;

// Random page read cost at reference IO speed; sequential pages stream
// much faster. Milliseconds per 8 KB page.
constexpr double kRandomPageMs = 0.08;
constexpr double kSeqPageMs = 0.02;

// Per-transaction state that travels through the pipeline stages.
struct TxnState {
  const TxnTypeSpec* txn = nullptr;
  int terminal = 0;
  double start_s = 0.0;
  double granted_mb = 0.0;
  /// Run-level speed multiplier of this transaction type (plan/cache
  /// idiosyncrasies drift per type per run, independently across types —
  /// the effect that makes per-type prediction noisier than workload-level
  /// prediction, paper Figure 1).
  double type_mult = 1.0;
};

struct TypeStats {
  double latency_sum_s = 0.0;
  uint64_t count = 0;
};

class EngineSim {
 public:
  explicit EngineSim(const RunRequest& request)
      : request_(request),
        rng_(request.config.seed),
        sim_(),
        cpu_(&sim_, std::max(1, request.sku.cpus)),
        io_(&sim_, 8) {}

  Result<Experiment> Run();

 private:
  const WorkloadSpec& workload() const { return request_.workload; }
  const Sku& sku() const { return request_.sku; }

  size_t PickTxnIndex();
  void StartTxn(int terminal);
  void CpuPhase(std::shared_ptr<TxnState> state);
  void IoPhase(std::shared_ptr<TxnState> state);
  void Commit(std::shared_ptr<TxnState> state);
  void TakeSample(size_t row);

  double ConflictProbability(const TxnTypeSpec& txn) const;

  RunRequest request_;
  Rng rng_;
  Simulator sim_;
  FcfsStation cpu_;
  FcfsStation io_;

  int terminals_ = 1;
  double cpu_speed_ = 1.0;      // effective core speed multiplier
  double io_speed_ = 1.0;       // effective IO speed multiplier
  double grant_cap_mb_ = 0.0;
  double lock_wait_mult_ = 1.0;

  // Live state.
  double active_write_locks_ = 0.0;
  double active_grants_mb_ = 0.0;
  int active_txns_ = 0;

  // Monotone counters; the sampler differences them per interval.
  double lock_requests_ = 0.0;
  double lock_waits_ = 0.0;
  double read_ios_ = 0.0;
  double write_ios_ = 0.0;
  double cpu_work_ref_ms_ = 0.0;
  double dirty_pages_ = 0.0;  // awaiting the next checkpoint flush

  // Sampler memory of the previous counter values.
  double prev_cpu_busy_ = 0.0;
  double prev_lock_requests_ = 0.0;
  double prev_lock_waits_ = 0.0;
  double prev_read_ios_ = 0.0;
  double prev_write_ios_ = 0.0;
  double prev_cpu_work_ = 0.0;

  Matrix samples_;
  std::map<std::string, TypeStats> type_stats_;
  TypeStats total_stats_;

  // Cumulative mix weights for transaction sampling.
  std::vector<double> cum_weights_;
  // Per-transaction-type run-level CPU-time multiplier.
  std::vector<double> type_cpu_mult_;
};

size_t EngineSim::PickTxnIndex() {
  const double u = rng_.Uniform(0.0, cum_weights_.back());
  const auto it = std::lower_bound(cum_weights_.begin(), cum_weights_.end(), u);
  return std::min(workload().transactions.size() - 1,
                  static_cast<size_t>(it - cum_weights_.begin()));
}

double EngineSim::ConflictProbability(const TxnTypeSpec& txn) const {
  if (txn.locks_acquired <= 0.0 || active_write_locks_ <= 0.0) return 0.0;
  // Hot-key population shrinks exponentially with access skew; conflicts
  // scale with the product of this transaction's lock footprint and the
  // write locks currently held by others.
  const double hot_keys = std::max(
      500.0, txn.table_cardinality * std::pow(10.0, -6.0 * workload().access_skew));
  const double pressure = txn.locks_acquired * active_write_locks_ / hot_keys;
  return 1.0 - std::exp(-pressure);
}

void EngineSim::StartTxn(int terminal) {
  auto state = std::make_shared<TxnState>();
  const size_t txn_index = PickTxnIndex();
  state->txn = &workload().transactions[txn_index];
  state->type_mult = type_cpu_mult_[txn_index];
  state->terminal = terminal;
  state->start_s = sim_.now();
  ++active_txns_;

  const TxnTypeSpec& txn = *state->txn;
  lock_requests_ += txn.locks_acquired;
  const double p_conflict = ConflictProbability(txn);
  if (txn.is_write) active_write_locks_ += txn.locks_acquired;

  if (p_conflict > 0.0 && rng_.Bernoulli(p_conflict)) {
    lock_waits_ += 1.0;
    // Waiters block roughly for the residence time of the lock holder,
    // which grows with system load; the run-level multiplier injects the
    // bursty, high-variance nature of lock waits in the cloud.
    const double mean_wait_s =
        (0.002 + 0.004 * active_txns_ / std::max(1, sku().cpus)) *
        lock_wait_mult_;
    sim_.Schedule(rng_.Exponential(mean_wait_s),
                  [this, state]() { CpuPhase(state); });
  } else {
    CpuPhase(std::move(state));
  }
}

void EngineSim::CpuPhase(std::shared_ptr<TxnState> state) {
  const TxnTypeSpec& txn = *state->txn;
  state->granted_mb = std::min(txn.query_memory_mb, grant_cap_mb_);
  active_grants_mb_ += state->granted_mb;

  const double pf = std::clamp(txn.parallel_fraction, 0.0, 1.0);
  const double serial_ms = txn.cpu_ms * state->type_mult * (1.0 - pf);
  const double serial_s = serial_ms / 1000.0 / cpu_speed_;

  cpu_.Submit(serial_s, [this, state, serial_ms, pf]() {
    cpu_work_ref_ms_ += serial_ms;
    const TxnTypeSpec& txn = *state->txn;
    const int dop = std::min(sku().cpus, std::max(1, txn.max_dop));
    if (pf <= 0.0 || dop <= 1) {
      IoPhase(state);
      return;
    }
    // Fork-join: the parallel portion splits into dop equal chunks that
    // queue on the shared CPU station, so parallel speed-up degrades
    // gracefully under contention (emergent Amdahl behaviour).
    const double chunk_ms = txn.cpu_ms * state->type_mult * pf / dop;
    const double chunk_s = chunk_ms / 1000.0 / cpu_speed_;
    auto remaining = std::make_shared<int>(dop);
    for (int i = 0; i < dop; ++i) {
      cpu_.Submit(chunk_s, [this, state, remaining, chunk_ms]() {
        cpu_work_ref_ms_ += chunk_ms;
        if (--(*remaining) == 0) IoPhase(state);
      });
    }
  });
}

void EngineSim::IoPhase(std::shared_ptr<TxnState> state) {
  const TxnTypeSpec& txn = *state->txn;
  const double hit = BufferHitRate(workload(), sku(), sim_.now());
  const double misses = txn.logical_ios * (1.0 - hit);

  // Memory-starved queries spill their overflow to tempdb: written once,
  // read back once (sequential both ways).
  const double spill_mb = std::max(0.0, txn.query_memory_mb - state->granted_mb);
  const double spill_pages = spill_mb * 128.0 * 2.0;

  // Writers flush a share of touched pages plus the log record.
  const double flush_pages =
      txn.is_write ? 0.4 * txn.logical_ios + 2.0 : 0.0;

  const double read_pages = misses + spill_pages / 2.0;
  const double write_pages = flush_pages + spill_pages / 2.0;

  // Large logical footprints stream sequentially; point accesses are random.
  const double miss_page_ms = txn.logical_ios > 2000.0 ? kSeqPageMs : kRandomPageMs;
  const double service_ms = (misses * miss_page_ms + spill_pages * kSeqPageMs +
                             flush_pages * kRandomPageMs * 0.5) /
                            io_speed_;
  const double service_s = service_ms / 1000.0;

  // A share of the touched pages stays dirty in the buffer pool until the
  // periodic checkpoint flushes it.
  const double dirtied = txn.is_write ? 0.3 * txn.logical_ios : 0.0;
  auto finish = [this, state, read_pages, write_pages, dirtied]() {
    read_ios_ += read_pages;
    write_ios_ += write_pages;
    dirty_pages_ += dirtied;
    Commit(state);
  };
  if (service_s <= 0.0) {
    finish();
  } else {
    io_.Submit(service_s, std::move(finish));
  }
}

void EngineSim::Commit(std::shared_ptr<TxnState> state) {
  const TxnTypeSpec& txn = *state->txn;
  active_grants_mb_ -= state->granted_mb;
  if (txn.is_write) active_write_locks_ -= txn.locks_acquired;
  --active_txns_;

  const double latency_s = sim_.now() - state->start_s;
  TypeStats& per_type = type_stats_[txn.name];
  per_type.latency_sum_s += latency_s;
  per_type.count += 1;
  total_stats_.latency_sum_s += latency_s;
  total_stats_.count += 1;

  const double think_s =
      workload().think_time_ms > 0.0
          ? rng_.Exponential(workload().think_time_ms / 1000.0)
          : 0.0;
  const int terminal = state->terminal;
  sim_.Schedule(think_s, [this, terminal]() { StartTxn(terminal); });
}

void EngineSim::TakeSample(size_t row) {
  const double dt = request_.config.sample_period_s;
  const int cpus = std::max(1, sku().cpus);

  const double cpu_busy = cpu_.BusyIntegral();
  const double util = 100.0 * (cpu_busy - prev_cpu_busy_) / (cpus * dt);
  prev_cpu_busy_ = cpu_busy;

  const double eff =
      100.0 * ((cpu_work_ref_ms_ - prev_cpu_work_) / 1000.0) / (cpus * dt);
  prev_cpu_work_ = cpu_work_ref_ms_;

  const double buffer_gb =
      std::min(workload().working_set_gb, 0.8 * sku().memory_gb) *
      (1.0 - std::exp(-sim_.now() / kWarmupTauS));
  const double mem =
      100.0 * (buffer_gb + active_grants_mb_ / 1024.0) / sku().memory_gb;

  const double reads = read_ios_ - prev_read_ios_;
  const double writes = write_ios_ - prev_write_ios_;
  prev_read_ios_ = read_ios_;
  prev_write_ios_ = write_ios_;
  const double iops = (reads + writes) / dt;
  const double rw_ratio = (reads + 1.0) / (reads + writes + 2.0);

  const double lock_req = lock_requests_ - prev_lock_requests_;
  const double lock_wait = lock_waits_ - prev_lock_waits_;
  prev_lock_requests_ = lock_requests_;
  prev_lock_waits_ = lock_waits_;

  Vector sample(kNumResourceFeatures);
  sample[IndexOf(FeatureId::kCpuUtilization)] = util;
  sample[IndexOf(FeatureId::kCpuEffective)] = eff;
  sample[IndexOf(FeatureId::kMemUtilization)] = mem;
  sample[IndexOf(FeatureId::kIopsTotal)] = iops;
  sample[IndexOf(FeatureId::kReadWriteRatio)] = rw_ratio;
  sample[IndexOf(FeatureId::kLockReqAbs)] = lock_req;
  sample[IndexOf(FeatureId::kLockWaitAbs)] = lock_wait;

  // perf-style measurement noise.
  for (double& v : sample) v = std::max(0.0, v * (1.0 + rng_.Gaussian(0.0, 0.035)));
  samples_.SetRow(row, sample);
}

Result<Experiment> EngineSim::Run() {
  const SimConfig& config = request_.config;
  if (config.duration_s <= 0.0) {
    return Status::InvalidArgument("duration must be positive");
  }
  if (config.sample_period_s <= 0.0 ||
      config.sample_period_s > config.duration_s) {
    return Status::InvalidArgument("invalid sample period");
  }
  if (request_.terminals < 1) {
    return Status::InvalidArgument("terminals must be >= 1");
  }
  if (workload().transactions.empty()) {
    return Status::InvalidArgument("workload has no transaction types");
  }

  terminals_ = workload().serial_only ? 1 : request_.terminals;

  const int group = ((config.data_group % 3) + 3) % 3;
  cpu_speed_ = sku().core_speed * kGroupCpuSpeed[group] *
               rng_.LogNormalMedian(1.0, 0.02);
  io_speed_ = (sku().io_mbps / 400.0) * kGroupIoSpeed[group] *
              rng_.LogNormalMedian(1.0, 0.03);
  grant_cap_mb_ = MemoryGrantCapMb(sku(), terminals_);
  lock_wait_mult_ = rng_.LogNormalMedian(1.0, 0.15);
  type_cpu_mult_.clear();
  for (size_t t = 0; t < workload().transactions.size(); ++t) {
    type_cpu_mult_.push_back(rng_.LogNormalMedian(1.0, 0.15));
  }

  cum_weights_.clear();
  double acc = 0.0;
  for (const TxnTypeSpec& t : workload().transactions) {
    WPRED_CHECK_GT(t.weight, 0.0) << "non-positive mix weight for " << t.name;
    acc += t.weight;
    cum_weights_.push_back(acc);
  }

  const size_t num_samples =
      static_cast<size_t>(config.duration_s / config.sample_period_s + 1e-9);
  samples_ = Matrix(num_samples, kNumResourceFeatures);

  // Stagger terminal start-up so clients do not run in lockstep.
  for (int t = 0; t < terminals_; ++t) {
    const double offset =
        rng_.Uniform(0.0, (workload().think_time_ms + 1.0) / 1000.0);
    sim_.Schedule(offset, [this, t]() { StartTxn(t); });
  }
  // Periodic resource sampling.
  for (size_t s = 0; s < num_samples; ++s) {
    sim_.ScheduleAt((s + 1) * config.sample_period_s,
                    [this, s]() { TakeSample(s); });
  }
  // Periodic checkpoints: flush accumulated dirty pages in a burst.
  if (config.checkpoint_interval_s > 0.0) {
    for (double t = config.checkpoint_interval_s; t <= config.duration_s;
         t += config.checkpoint_interval_s) {
      sim_.ScheduleAt(t, [this]() {
        if (dirty_pages_ <= 0.0) return;
        const double pages = dirty_pages_;
        dirty_pages_ = 0.0;
        const double service_s = pages * kSeqPageMs / io_speed_ / 1000.0;
        io_.Submit(service_s, [this, pages]() { write_ios_ += pages; });
      });
    }
  }

  const auto wall_start = std::chrono::steady_clock::now();
  sim_.RunUntil(config.duration_s);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  WPRED_COUNT_ADD("sim.runs", 1);
  WPRED_COUNT_ADD("sim.events_processed", sim_.processed_events());
  WPRED_HIST_RECORD("sim.wall_seconds", wall_seconds);
  // Simulated seconds per wall second; >> 1 means the engine outruns
  // real time (a gauge, so the dump reports the most recent run).
  if (wall_seconds > 0.0) {
    WPRED_GAUGE_SET("sim.time_ratio", config.duration_s / wall_seconds);
  }

  Experiment experiment;
  experiment.workload = workload().name;
  experiment.type = workload().type;
  experiment.sku = sku().name;
  experiment.cpus = sku().cpus;
  experiment.memory_gb = sku().memory_gb;
  experiment.terminals = terminals_;
  experiment.run_id = request_.run_id;
  experiment.data_group = config.data_group;
  experiment.resource.values = std::move(samples_);
  experiment.resource.sample_period_s = config.sample_period_s;

  Rng plan_rng = rng_.Fork(0x9a57);
  WPRED_ASSIGN_OR_RETURN(
      experiment.plans,
      SynthesizePlanStats(workload(), sku(), config.plan_observations,
                          plan_rng));

  PerfSummary perf;
  perf.throughput_tps =
      static_cast<double>(total_stats_.count) / config.duration_s;
  perf.mean_latency_ms =
      total_stats_.count > 0
          ? 1000.0 * total_stats_.latency_sum_s / total_stats_.count
          : 0.0;
  for (const auto& [name, stats] : type_stats_) {
    perf.latency_ms_by_type[name] =
        stats.count > 0 ? 1000.0 * stats.latency_sum_s / stats.count : 0.0;
    perf.throughput_tps_by_type[name] =
        static_cast<double>(stats.count) / config.duration_s;
  }
  experiment.perf = std::move(perf);
  return experiment;
}

}  // namespace

double BufferHitRate(const WorkloadSpec& workload, const Sku& sku, double t) {
  const double coverage =
      std::min(1.0, 0.8 * sku.memory_gb / std::max(1e-9, workload.working_set_gb));
  const double hit_final = std::min(0.985, 0.30 + 0.68 * coverage);
  const double warm = 1.0 - std::exp(-std::max(0.0, t) / kWarmupTauS);
  return 0.30 + (hit_final - 0.30) * warm;
}

double MemoryGrantCapMb(const Sku& sku, int terminals) {
  return 0.10 * sku.memory_gb * 1024.0 /
         std::sqrt(static_cast<double>(std::max(1, terminals)));
}

Result<Experiment> RunExperiment(const RunRequest& request) {
  EngineSim engine(request);
  return engine.Run();
}

}  // namespace wpred
