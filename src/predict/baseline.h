#ifndef WPRED_PREDICT_BASELINE_H_
#define WPRED_PREDICT_BASELINE_H_

namespace wpred {

/// The paper's Table 6 baseline: assume latency scales inverse-linearly
/// with CPU count (doubling CPUs halves latency), which for a closed-loop
/// workload means throughput scales linearly with CPUs. Predicted
/// performance at `to_cpus` from an observation at `from_cpus`.
double InverseLinearScalingBaseline(double from_cpus, double to_cpus,
                                    double perf_from);

}  // namespace wpred

#endif  // WPRED_PREDICT_BASELINE_H_
