#include "predict/roofline.h"

#include <algorithm>
#include <limits>

#include "ml/linear_regression.h"

namespace wpred {

Result<RooflineModel> RooflineModel::Fit(const Vector& cpus,
                                         const Vector& throughput,
                                         double ceiling) {
  if (cpus.size() != throughput.size()) {
    return Status::InvalidArgument("size mismatch");
  }
  if (cpus.size() < 2) return Status::InvalidArgument("need >= 2 points");
  if (ceiling <= 0.0) return Status::InvalidArgument("ceiling must be > 0");

  Matrix x(cpus.size(), 1);
  for (size_t i = 0; i < cpus.size(); ++i) x(i, 0) = cpus[i];
  LinearRegression linear;
  WPRED_RETURN_IF_ERROR(linear.Fit(x, throughput));
  return RooflineModel(linear.coefficients()[0], linear.intercept(), ceiling);
}

double RooflineModel::Predict(double cpus) const {
  return std::min(PredictLinearOnly(cpus), ceiling_);
}

double RooflineModel::PredictLinearOnly(double cpus) const {
  return intercept_ + slope_ * cpus;
}

double RooflineModel::CrossoverCpus() const {
  if (slope_ <= 0.0) return std::numeric_limits<double>::infinity();
  return (ceiling_ - intercept_) / slope_;
}

Result<double> MemoryBoundCeiling(double memory_bandwidth_mbps,
                                  double bytes_per_txn) {
  if (memory_bandwidth_mbps <= 0.0 || bytes_per_txn <= 0.0) {
    return Status::InvalidArgument("bandwidth and bytes must be positive");
  }
  return memory_bandwidth_mbps * 1024.0 * 1024.0 / bytes_per_txn;
}

}  // namespace wpred
