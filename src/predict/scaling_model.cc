#include "predict/scaling_model.h"

#include <algorithm>
#include <cmath>

#include "linalg/stats.h"
#include "predict/strategies.h"

namespace wpred {
namespace {

// Design matrix for a 1-feature problem, with the group id appended when
// the strategy consumes it (LMM random intercepts).
Matrix BuildDesign(const std::vector<double>& x, const std::vector<int>& groups,
                   bool uses_group) {
  WPRED_DCHECK_EQ(x.size(), groups.size());
  Matrix design(x.size(), uses_group ? 2 : 1);
  for (size_t i = 0; i < x.size(); ++i) {
    design(i, 0) = x[i];
    if (uses_group) design(i, 1) = groups[i];
  }
  return design;
}

Vector BuildRow(double x, int group, bool uses_group) {
  return uses_group ? Vector{x, static_cast<double>(group)} : Vector{x};
}

}  // namespace

std::string_view ModelContextName(ModelContext context) {
  return context == ModelContext::kSingle ? "Single" : "Pairwise";
}

Status SingleScalingModel::Fit(const std::string& strategy,
                               const std::vector<SkuPerfPoint>& points) {
  if (points.size() < 2) {
    return Status::InvalidArgument("need at least two observations");
  }
  strategy_ = strategy;
  uses_group_ = StrategyUsesGroups(strategy);
  // LMM's group column is column 1 of the design below.
  WPRED_ASSIGN_OR_RETURN(model_, CreateScalingRegressor(strategy, 1));

  std::vector<double> x(points.size());
  std::vector<int> groups(points.size());
  Vector y(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    WPRED_DCHECK(std::isfinite(points[i].sku_value) &&
                 std::isfinite(points[i].perf))
        << "non-finite SKU observation at index " << i;
    x[i] = points[i].sku_value;
    groups[i] = points[i].group;
    y[i] = points[i].perf;
  }
  return model_->Fit(BuildDesign(x, groups, uses_group_), y);
}

Result<double> SingleScalingModel::Predict(double sku_value, int group) const {
  if (!fitted()) return Status::FailedPrecondition("model not fitted");
  return model_->Predict(BuildRow(sku_value, group, uses_group_));
}

Result<double> SingleScalingModel::PredictTransition(double from_sku,
                                                     double to_sku,
                                                     double perf_from,
                                                     int group) const {
  WPRED_ASSIGN_OR_RETURN(const double at_from, Predict(from_sku, group));
  WPRED_ASSIGN_OR_RETURN(const double at_to, Predict(to_sku, group));
  if (at_from <= 0.0) {
    return Status::NumericalError("non-positive curve value at source SKU");
  }
  return perf_from * at_to / at_from;
}

std::vector<MatchedPair> MatchAcrossSkus(const std::vector<SkuPerfPoint>& points,
                                         double from_sku, double to_sku) {
  std::vector<MatchedPair> matched;
  for (const SkuPerfPoint& a : points) {
    if (a.sku_value != from_sku) continue;
    for (const SkuPerfPoint& b : points) {
      if (b.sku_value != to_sku) continue;
      if (a.group == b.group && a.run_id == b.run_id &&
          a.sample_id == b.sample_id) {
        matched.push_back({a.perf, b.perf, a.group, a.run_id, a.sample_id});
      }
    }
  }
  return matched;
}

std::vector<double> DistinctSkuValues(const std::vector<SkuPerfPoint>& points) {
  std::vector<double> values;
  for (const SkuPerfPoint& p : points) values.push_back(p.sku_value);
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

Status PairwiseScalingModel::Fit(const std::string& strategy,
                                 const std::vector<SkuPerfPoint>& points) {
  strategy_ = strategy;
  uses_group_ = StrategyUsesGroups(strategy);
  pair_models_.clear();

  const std::vector<double> skus = DistinctSkuValues(points);
  if (skus.size() < 2) {
    return Status::InvalidArgument("need observations at >= 2 SKU values");
  }
  for (double from : skus) {
    for (double to : skus) {
      if (from == to) continue;
      const std::vector<MatchedPair> matched =
          MatchAcrossSkus(points, from, to);
      if (matched.size() < 2) continue;
      std::vector<double> x(matched.size());
      std::vector<int> groups(matched.size());
      Vector y(matched.size());
      for (size_t i = 0; i < matched.size(); ++i) {
        x[i] = matched[i].perf_from;
        groups[i] = matched[i].group;
        y[i] = matched[i].perf_to;
      }
      WPRED_ASSIGN_OR_RETURN(std::unique_ptr<Regressor> model,
                             CreateScalingRegressor(strategy, 1));
      WPRED_RETURN_IF_ERROR(
          model->Fit(BuildDesign(x, groups, uses_group_), y));
      pair_models_[{from, to}] = std::move(model);
      const auto [lo, hi] = std::minmax_element(x.begin(), x.end());
      pair_range_[{from, to}] = {*lo, *hi};
      pair_median_[{from, to}] = Median(Vector(x.begin(), x.end()));
    }
  }
  if (pair_models_.empty()) {
    return Status::InvalidArgument(
        "no SKU pair had >= 2 matched observations");
  }
  return Status::OK();
}

Result<double> PairwiseScalingModel::PredictTransition(double from_sku,
                                                       double to_sku,
                                                       double perf_from,
                                                       int group) const {
  const auto it = pair_models_.find({from_sku, to_sku});
  if (it == pair_models_.end()) {
    return Status::NotFound("no model for the requested SKU pair");
  }
  return it->second->Predict(BuildRow(perf_from, group, uses_group_));
}

Result<double> PairwiseScalingModel::PredictTransitionScaled(
    double from_sku, double to_sku, double perf_from, int group) const {
  const auto range = pair_range_.find({from_sku, to_sku});
  if (range == pair_range_.end()) {
    return Status::NotFound("no model for the requested SKU pair");
  }
  if (perf_from <= 0.0) {
    return Status::InvalidArgument("observed performance must be positive");
  }
  const bool in_range = perf_from >= range->second.first &&
                        perf_from <= range->second.second;
  const double anchor =
      in_range ? perf_from : pair_median_.at({from_sku, to_sku});
  WPRED_ASSIGN_OR_RETURN(const double at_anchor,
                         PredictTransition(from_sku, to_sku, anchor, group));
  if (anchor <= 0.0) {
    return Status::NumericalError("non-positive anchor");
  }
  return perf_from * at_anchor / anchor;
}

std::vector<std::pair<double, double>> PairwiseScalingModel::Pairs() const {
  std::vector<std::pair<double, double>> pairs;
  pairs.reserve(pair_models_.size());
  for (const auto& [key, model] : pair_models_) pairs.push_back(key);
  return pairs;
}

}  // namespace wpred
