#include "predict/strategies.h"

#include "ml/gradient_boosting.h"
#include "ml/linear_regression.h"
#include "ml/lmm.h"
#include "ml/mars.h"
#include "ml/mlp.h"
#include "ml/svr.h"

namespace wpred {

Result<std::unique_ptr<Regressor>> CreateScalingRegressor(
    const std::string& strategy, size_t group_column) {
  if (strategy == "Regression") {
    return std::unique_ptr<Regressor>(new LinearRegression());
  }
  if (strategy == "SVM") {
    return std::unique_ptr<Regressor>(new SvmRegressor());
  }
  if (strategy == "LMM") {
    return std::unique_ptr<Regressor>(new LmmRegressor(group_column));
  }
  if (strategy == "GB") {
    GbParams params;
    params.num_stages = 100;
    params.max_depth = 2;  // tiny scaling datasets: shallow stages
    return std::unique_ptr<Regressor>(new GradientBoostingRegressor(params));
  }
  if (strategy == "MARS") {
    return std::unique_ptr<Regressor>(new MarsRegressor());
  }
  if (strategy == "NNet") {
    // Mirror the paper's scikit-learn MLPRegressor configuration: six
    // hidden layers, 200 iterations, and NO input/target scaling — the
    // combination responsible for Table 6's blown-up NNet errors.
    MlpParams params;
    params.epochs = 200;
    params.standardize = false;
    return std::unique_ptr<Regressor>(new MlpRegressor(params));
  }
  return Status::NotFound("unknown scaling strategy: " + strategy);
}

std::vector<std::string> AllScalingStrategyNames() {
  return {"Regression", "SVM", "LMM", "GB", "MARS", "NNet"};
}

bool StrategyUsesGroups(const std::string& strategy) {
  return strategy == "LMM";
}

}  // namespace wpred
