#ifndef WPRED_PREDICT_SCALING_MODEL_H_
#define WPRED_PREDICT_SCALING_MODEL_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "ml/model.h"

namespace wpred {

/// One performance measurement of a workload at a SKU, tagged with the
/// provenance needed to match observations across SKUs: the time-of-day
/// data group, the repetition, and the down-sample index (paper Section 6.2
/// derives 30 points per workload/SKU from 3 runs × 10 sub-series).
struct SkuPerfPoint {
  double sku_value = 0.0;  // e.g. number of CPUs
  double perf = 0.0;       // e.g. throughput in tps
  int group = 0;
  int run_id = 0;
  int sample_id = 0;
};

/// Paper Section 6.1.1 modelling contexts.
enum class ModelContext { kSingle, kPairwise };

std::string_view ModelContextName(ModelContext context);

/// Single scaling model: one regressor over (sku_value [, group]) → perf,
/// the "comprehensive progression over hardware settings".
class SingleScalingModel {
 public:
  /// Fits the named strategy on all points.
  Status Fit(const std::string& strategy,
             const std::vector<SkuPerfPoint>& points);

  /// Predicted performance at a SKU value (group feeds LMM only).
  Result<double> Predict(double sku_value, int group = 0) const;

  /// Transition form shared with the pairwise model: predicted performance
  /// at `to_sku` given an observed performance at `from_sku`, computed by
  /// rescaling the curve: perf_from · f(to)/f(from).
  Result<double> PredictTransition(double from_sku, double to_sku,
                                   double perf_from, int group = 0) const;

  bool fitted() const { return model_ != nullptr; }

 private:
  std::string strategy_;
  bool uses_group_ = false;
  std::unique_ptr<Regressor> model_;
};

/// Pairwise scaling model: an independent regressor per ordered SKU pair
/// (from → to), fit on matched observations perf@from → perf@to.
class PairwiseScalingModel {
 public:
  /// Matches points across every ordered pair of distinct SKU values by
  /// (group, run_id, sample_id) and fits one regressor per pair. Pairs with
  /// fewer than 2 matched observations are skipped; failing to match any
  /// pair is an error.
  Status Fit(const std::string& strategy,
             const std::vector<SkuPerfPoint>& points);

  /// Predicted performance at `to_sku` given observed perf at `from_sku`.
  /// Unknown pairs return NotFound.
  Result<double> PredictTransition(double from_sku, double to_sku,
                                   double perf_from, int group = 0) const;

  /// Transfer variant for observations outside the pair's training range
  /// (e.g. a *different* workload's performance level, Section 6.2.3): the
  /// model is evaluated at the training median — the best-supported point
  /// of the reference data — and applied as a scaling FACTOR to the raw
  /// observation. Inside the range this coincides with PredictTransition.
  Result<double> PredictTransitionScaled(double from_sku, double to_sku,
                                         double perf_from, int group = 0) const;

  /// All fitted (from, to) pairs.
  std::vector<std::pair<double, double>> Pairs() const;

  bool fitted() const { return !pair_models_.empty(); }

 private:
  std::string strategy_;
  bool uses_group_ = false;
  std::map<std::pair<double, double>, std::unique_ptr<Regressor>> pair_models_;
  /// Training-input range per pair (min, max of perf@from).
  std::map<std::pair<double, double>, std::pair<double, double>> pair_range_;
  /// Training-input median per pair (transfer anchor).
  std::map<std::pair<double, double>, double> pair_median_;
};

/// Matched (perf_from, perf_to, group) tuples between two SKU values,
/// joined on (group, run_id, sample_id).
struct MatchedPair {
  double perf_from;
  double perf_to;
  int group;
  int run_id;
  int sample_id;
};
std::vector<MatchedPair> MatchAcrossSkus(const std::vector<SkuPerfPoint>& points,
                                         double from_sku, double to_sku);

/// Distinct SKU values present in `points`, ascending.
std::vector<double> DistinctSkuValues(const std::vector<SkuPerfPoint>& points);

}  // namespace wpred

#endif  // WPRED_PREDICT_SCALING_MODEL_H_
