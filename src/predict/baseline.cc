#include "predict/baseline.h"

#include "common/check.h"

namespace wpred {

double InverseLinearScalingBaseline(double from_cpus, double to_cpus,
                                    double perf_from) {
  WPRED_CHECK_GT(from_cpus, 0.0);
  WPRED_CHECK_GT(to_cpus, 0.0);
  return perf_from * to_cpus / from_cpus;
}

}  // namespace wpred
