#ifndef WPRED_PREDICT_RIDGELINE_H_
#define WPRED_PREDICT_RIDGELINE_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace wpred {

/// Ridgeline model (paper Section 7 future work, after Checconi et al.): a
/// two-dimensional extension of the Roofline idea for multi-dimensional
/// SKUs. Throughput grows linearly with CPUs (the compute-bound regime) but
/// is clipped by a memory-dependent ceiling; the ceiling itself is learned
/// from per-memory plateau observations and interpolated piecewise-linearly
/// between (and clamped beyond) the observed memory sizes.
///
/// This upgrades the Appendix B roofline from "one ceiling" to "a ridge of
/// ceilings over the memory axis", enabling predictions for SKUs that scale
/// CPU and memory together (Section 6.2.3's S1/S2 shape).
class RidgelineModel {
 public:
  struct CeilingPoint {
    double memory_gb;
    double ceiling_tput;
  };

  /// Fits the linear CPU law on compute-bound observations and installs the
  /// memory->ceiling ridge. Requires >= 2 CPU points and >= 1 ceiling point
  /// with positive memory and ceiling values.
  static Result<RidgelineModel> Fit(const Vector& cpus,
                                    const Vector& throughput,
                                    std::vector<CeilingPoint> ridge);

  /// min(linear(cpus), ceiling(memory_gb)).
  double Predict(double cpus, double memory_gb) const;

  /// Interpolated ceiling at a memory size.
  double CeilingAt(double memory_gb) const;

  /// CPU count where the linear law meets the ceiling for this memory size
  /// (infinity for non-positive slope).
  double CrossoverCpus(double memory_gb) const;

  double slope() const { return slope_; }
  double intercept() const { return intercept_; }

 private:
  RidgelineModel(double slope, double intercept,
                 std::vector<CeilingPoint> ridge)
      : slope_(slope), intercept_(intercept), ridge_(std::move(ridge)) {}

  double slope_;
  double intercept_;
  std::vector<CeilingPoint> ridge_;  // sorted by memory_gb
};

}  // namespace wpred

#endif  // WPRED_PREDICT_RIDGELINE_H_
