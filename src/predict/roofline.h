#ifndef WPRED_PREDICT_ROOFLINE_H_
#define WPRED_PREDICT_ROOFLINE_H_

#include "common/status.h"
#include "linalg/matrix.h"

namespace wpred {

/// Roofline-augmented linear scaling model (paper Appendix B, Figure 12):
/// a linear regression of throughput over #CPUs clipped at a hardware
/// performance ceiling. Below the crossover the workload is compute-bound;
/// beyond it adding CPUs does not help (memory-bound regime).
class RooflineModel {
 public:
  /// Fits the linear part on (cpus, throughput) points and installs the
  /// ceiling. Requires >= 2 points and ceiling > 0.
  static Result<RooflineModel> Fit(const Vector& cpus, const Vector& throughput,
                                   double ceiling);

  /// Piecewise-linear prediction min(intercept + slope·cpus, ceiling).
  double Predict(double cpus) const;

  /// Unclipped linear prediction (the model that over-predicts in Fig. 12).
  double PredictLinearOnly(double cpus) const;

  /// CPU count at which the linear model meets the ceiling (infinity when
  /// the slope is non-positive).
  double CrossoverCpus() const;

  double slope() const { return slope_; }
  double intercept() const { return intercept_; }
  double ceiling() const { return ceiling_; }

 private:
  RooflineModel(double slope, double intercept, double ceiling)
      : slope_(slope), intercept_(intercept), ceiling_(ceiling) {}

  double slope_;
  double intercept_;
  double ceiling_;
};

/// Memory-bandwidth-style throughput ceiling for a workload: the maximum
/// request rate the memory subsystem sustains, used when no measured
/// ceiling is available. `bytes_per_txn` > 0, `memory_bandwidth_mbps` > 0.
Result<double> MemoryBoundCeiling(double memory_bandwidth_mbps,
                                  double bytes_per_txn);

}  // namespace wpred

#endif  // WPRED_PREDICT_ROOFLINE_H_
