#include "predict/ridgeline.h"

#include <algorithm>
#include <limits>

#include "ml/linear_regression.h"

namespace wpred {

Result<RidgelineModel> RidgelineModel::Fit(const Vector& cpus,
                                           const Vector& throughput,
                                           std::vector<CeilingPoint> ridge) {
  if (cpus.size() != throughput.size()) {
    return Status::InvalidArgument("size mismatch");
  }
  if (cpus.size() < 2) return Status::InvalidArgument("need >= 2 CPU points");
  if (ridge.empty()) return Status::InvalidArgument("ridge must be non-empty");
  for (const CeilingPoint& p : ridge) {
    if (p.memory_gb <= 0.0 || p.ceiling_tput <= 0.0) {
      return Status::InvalidArgument("ridge points must be positive");
    }
  }
  std::sort(ridge.begin(), ridge.end(),
            [](const CeilingPoint& a, const CeilingPoint& b) {
              return a.memory_gb < b.memory_gb;
            });
  for (size_t i = 1; i < ridge.size(); ++i) {
    if (ridge[i].memory_gb == ridge[i - 1].memory_gb) {
      return Status::InvalidArgument("duplicate ridge memory size");
    }
  }

  Matrix x(cpus.size(), 1);
  for (size_t i = 0; i < cpus.size(); ++i) x(i, 0) = cpus[i];
  LinearRegression linear;
  WPRED_RETURN_IF_ERROR(linear.Fit(x, throughput));
  return RidgelineModel(linear.coefficients()[0], linear.intercept(),
                        std::move(ridge));
}

double RidgelineModel::CeilingAt(double memory_gb) const {
  if (memory_gb <= ridge_.front().memory_gb) {
    return ridge_.front().ceiling_tput;
  }
  if (memory_gb >= ridge_.back().memory_gb) {
    return ridge_.back().ceiling_tput;
  }
  for (size_t i = 1; i < ridge_.size(); ++i) {
    if (memory_gb <= ridge_[i].memory_gb) {
      const CeilingPoint& lo = ridge_[i - 1];
      const CeilingPoint& hi = ridge_[i];
      const double t = (memory_gb - lo.memory_gb) /
                       (hi.memory_gb - lo.memory_gb);
      return lo.ceiling_tput + t * (hi.ceiling_tput - lo.ceiling_tput);
    }
  }
  return ridge_.back().ceiling_tput;  // unreachable
}

double RidgelineModel::Predict(double cpus, double memory_gb) const {
  return std::min(intercept_ + slope_ * cpus, CeilingAt(memory_gb));
}

double RidgelineModel::CrossoverCpus(double memory_gb) const {
  if (slope_ <= 0.0) return std::numeric_limits<double>::infinity();
  return (CeilingAt(memory_gb) - intercept_) / slope_;
}

}  // namespace wpred
