#ifndef WPRED_PREDICT_STRATEGIES_H_
#define WPRED_PREDICT_STRATEGIES_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "ml/model.h"

namespace wpred {

/// Creates one of the paper's Section 6.1.2 modelling strategies by name:
/// "Regression" (linear), "SVM" (ε-SVR, RBF), "LMM" (linear mixed model;
/// requires `group_column` pointing at the design-matrix column holding the
/// data-group id), "GB" (gradient boosting), "MARS", "NNet" (6-hidden-layer
/// MLP mirroring the paper's scikit-learn configuration).
Result<std::unique_ptr<Regressor>> CreateScalingRegressor(
    const std::string& strategy, size_t group_column);

/// All strategy names, Table 6 row order.
std::vector<std::string> AllScalingStrategyNames();

/// True if the strategy consumes the data-group column (only LMM does; the
/// other strategies receive a design matrix without it).
bool StrategyUsesGroups(const std::string& strategy);

}  // namespace wpred

#endif  // WPRED_PREDICT_STRATEGIES_H_
