#ifndef WPRED_CORE_WORKBENCH_H_
#define WPRED_CORE_WORKBENCH_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "predict/scaling_model.h"
#include "sim/engine.h"
#include "sim/hardware.h"
#include "telemetry/experiment.h"
#include "telemetry/observation.h"

namespace wpred {

/// Describes a grid of experiments to run on the simulator: every workload ×
/// SKU × terminal count × repetition (paper Section 2.1's grid). Seeds are
/// derived deterministically from the coordinates; repetition r is assigned
/// to data group r % 3 (the paper's three times of day).
struct WorkbenchConfig {
  std::vector<std::string> workloads;
  std::vector<Sku> skus;
  std::vector<int> terminals = {4, 8, 32};
  int runs = 3;
  SimConfig sim;
  uint64_t base_seed = 0xbe9c4;
};

/// Runs the grid and returns the corpus. Serial-only workloads (TPC-H,
/// TPC-DS) run once per SKU × repetition regardless of the terminal list.
Result<ExperimentCorpus> GenerateCorpus(const WorkbenchConfig& config);

/// Runs a single experiment with the workbench's deterministic seeding.
Result<Experiment> RunOne(const std::string& workload, const Sku& sku,
                          int terminals, int run, const SimConfig& sim_base,
                          uint64_t base_seed);

/// Per-(sub)experiment aggregate observation rows with labels — the input
/// to feature-selection strategies (Section 4): each experiment is
/// systematically split into `subsamples` sub-experiments; each contributes
/// one aggregate 29-feature row labelled by workload.
struct AggregateObservations {
  Matrix x;
  std::vector<int> labels;
  std::vector<size_t> experiment_idx;  // parent index in the source corpus
  std::vector<std::string> workload_names;
};
Result<AggregateObservations> BuildAggregateObservations(
    const ExperimentCorpus& corpus, size_t subsamples = 10);

/// One-vs-rest feature-selection problem for a single experiment (the
/// paper's per-experiment ranking protocol, Section 4.2): positives are the
/// experiment's own aggregate rows; negatives are rows of OTHER workloads;
/// rows from other runs of the same workload are held out entirely.
struct SelectionProblem {
  Matrix x;
  std::vector<int> y;  // 1 = rows of `experiment_idx`, 0 = other workloads
};
Result<SelectionProblem> BuildOneVsRestProblem(
    const AggregateObservations& aggregates,
    const std::vector<int>& corpus_workload_labels, size_t experiment_idx);

/// Scaling observations of one workload over a corpus: throughput per
/// (SKU, run, sub-sample) with random down-sampling of each run's resource
/// series driving sample-level jitter (paper Section 6.2's augmentation:
/// the sub-sample's throughput is the run throughput perturbed by the
/// sub-series' relative activity).
Result<std::vector<SkuPerfPoint>> CollectScalingPoints(
    const ExperimentCorpus& corpus, const std::string& workload,
    int terminals, size_t subsamples = 10);

}  // namespace wpred

#endif  // WPRED_CORE_WORKBENCH_H_
