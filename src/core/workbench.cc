#include "core/workbench.h"

#include <cmath>

#include "common/rng.h"
#include "linalg/stats.h"
#include "sim/workload_spec.h"
#include "telemetry/subsample.h"

namespace wpred {
namespace {

// Stable coordinate hash for experiment seeds.
uint64_t CoordinateSeed(uint64_t base, const std::string& workload, int cpus,
                        int terminals, int run) {
  uint64_t h = base ^ 0x9e3779b97f4a7c15ULL;
  for (char c : workload) h = (h * 1099511628211ULL) ^ static_cast<uint64_t>(c);
  h = (h * 1099511628211ULL) ^ static_cast<uint64_t>(cpus);
  h = (h * 1099511628211ULL) ^ static_cast<uint64_t>(terminals * 131);
  h = (h * 1099511628211ULL) ^ static_cast<uint64_t>(run * 31337);
  return h;
}

}  // namespace

Result<Experiment> RunOne(const std::string& workload, const Sku& sku,
                          int terminals, int run, const SimConfig& sim_base,
                          uint64_t base_seed) {
  WPRED_ASSIGN_OR_RETURN(WorkloadSpec spec, WorkloadByName(workload));
  RunRequest request;
  request.workload = std::move(spec);
  request.sku = sku;
  request.terminals = terminals;
  request.run_id = run;
  request.config = sim_base;
  request.config.seed =
      CoordinateSeed(base_seed, workload, sku.cpus, terminals, run);
  request.config.data_group = run % 3;
  return RunExperiment(request);
}

Result<ExperimentCorpus> GenerateCorpus(const WorkbenchConfig& config) {
  if (config.workloads.empty() || config.skus.empty() ||
      config.terminals.empty() || config.runs < 1) {
    return Status::InvalidArgument("empty workbench grid");
  }
  ExperimentCorpus corpus;
  for (const std::string& workload : config.workloads) {
    WPRED_ASSIGN_OR_RETURN(const WorkloadSpec spec, WorkloadByName(workload));
    // Serial workloads collapse the terminal axis.
    const std::vector<int> terminal_list =
        spec.serial_only ? std::vector<int>{1} : config.terminals;
    for (const Sku& sku : config.skus) {
      for (int terminals : terminal_list) {
        for (int run = 0; run < config.runs; ++run) {
          WPRED_ASSIGN_OR_RETURN(
              Experiment experiment,
              RunOne(workload, sku, terminals, run, config.sim,
                     config.base_seed));
          corpus.Add(std::move(experiment));
        }
      }
    }
  }
  return corpus;
}

Result<AggregateObservations> BuildAggregateObservations(
    const ExperimentCorpus& corpus, size_t subsamples) {
  if (corpus.empty()) return Status::InvalidArgument("empty corpus");
  AggregateObservations obs;
  obs.workload_names = corpus.WorkloadNames();
  const std::vector<int> labels = corpus.WorkloadLabels();
  std::vector<Vector> rows;
  for (size_t i = 0; i < corpus.size(); ++i) {
    WPRED_ASSIGN_OR_RETURN(std::vector<Experiment> subs,
                           SystematicSubsample(corpus[i], subsamples));
    for (const Experiment& sub : subs) {
      rows.push_back(AggregateFeatureVector(sub));
      obs.labels.push_back(labels[i]);
      obs.experiment_idx.push_back(i);
    }
  }
  obs.x = Matrix::FromRows(rows);
  return obs;
}

Result<SelectionProblem> BuildOneVsRestProblem(
    const AggregateObservations& aggregates,
    const std::vector<int>& corpus_workload_labels, size_t experiment_idx) {
  if (aggregates.x.rows() != aggregates.experiment_idx.size()) {
    return Status::InvalidArgument("malformed aggregates");
  }
  bool experiment_seen = false;
  for (size_t parent : aggregates.experiment_idx) {
    if (parent >= corpus_workload_labels.size()) {
      return Status::InvalidArgument("experiment index out of range");
    }
    if (parent == experiment_idx) experiment_seen = true;
  }
  if (!experiment_seen) {
    return Status::NotFound("experiment has no aggregate rows");
  }
  const int target_label = corpus_workload_labels[experiment_idx];
  std::vector<size_t> rows;
  SelectionProblem problem;
  for (size_t r = 0; r < aggregates.x.rows(); ++r) {
    const size_t parent = aggregates.experiment_idx[r];
    const bool same_experiment = parent == experiment_idx;
    const bool same_workload = corpus_workload_labels[parent] == target_label;
    if (same_workload && !same_experiment) continue;  // hold out twins
    rows.push_back(r);
    problem.y.push_back(same_experiment ? 1 : 0);
  }
  problem.x = aggregates.x.SelectRows(rows);
  return problem;
}

Result<std::vector<SkuPerfPoint>> CollectScalingPoints(
    const ExperimentCorpus& corpus, const std::string& workload, int terminals,
    size_t subsamples) {
  std::vector<SkuPerfPoint> points;
  for (const Experiment& e : corpus.experiments()) {
    if (e.workload != workload) continue;
    if (e.terminals != terminals) continue;
    WPRED_ASSIGN_OR_RETURN(std::vector<Experiment> subs,
                           SystematicSubsample(e, subsamples));
    // The run's mean activity anchors the sub-sample jitter.
    const Vector activity_full =
        e.resource.values.Col(IndexOf(FeatureId::kCpuEffective));
    const double full_mean = Mean(activity_full) + 1e-9;
    for (size_t s = 0; s < subs.size(); ++s) {
      const Vector activity =
          subs[s].resource.values.Col(IndexOf(FeatureId::kCpuEffective));
      const double factor = (Mean(activity) + 1e-9) / full_mean;
      SkuPerfPoint point;
      point.sku_value = e.cpus;
      point.perf = e.perf.throughput_tps * factor;
      point.group = e.data_group;
      point.run_id = e.run_id;
      point.sample_id = static_cast<int>(s);
      points.push_back(point);
    }
  }
  if (points.empty()) {
    return Status::NotFound("no experiments matched workload/terminals");
  }
  return points;
}

}  // namespace wpred
