#include "core/pipeline.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "featsel/ranking.h"
#include "featsel/registry.h"
#include "similarity/measures.h"

namespace wpred {

Status Pipeline::Fit(const ExperimentCorpus& reference) {
  if (reference.size() < 2) {
    return Status::InvalidArgument("reference corpus too small");
  }
  fitted_ = false;

  // Stage 1: feature selection on aggregate observations.
  WPRED_ASSIGN_OR_RETURN(
      AggregateObservations aggregates,
      BuildAggregateObservations(reference, config_.subsamples));
  WPRED_ASSIGN_OR_RETURN(std::unique_ptr<FeatureSelector> selector,
                         CreateSelector(config_.selector));
  WPRED_ASSIGN_OR_RETURN(Vector scores,
                         selector->ScoreFeatures(aggregates.x,
                                                 aggregates.labels));
  if (config_.representation == Representation::kMts) {
    // MTS can only represent resource features; exclude plan features from
    // the ranking by zeroing them below every resource feature.
    for (size_t f = kNumResourceFeatures; f < scores.size(); ++f) {
      scores[f] = -std::numeric_limits<double>::infinity();
    }
  }
  selected_features_ = ScoresToRanking(scores).TopK(config_.top_k);
  if (config_.representation == Representation::kMts) {
    // Defensive: drop any plan feature that slipped in via k > 7.
    std::vector<size_t> resource_only;
    for (size_t f : selected_features_) {
      if (f < kNumResourceFeatures) resource_only.push_back(f);
    }
    selected_features_ = std::move(resource_only);
    if (selected_features_.empty()) {
      return Status::FailedPrecondition(
          "MTS representation selected no resource features");
    }
  }

  // Stage 2: similarity machinery — shared normalisation + reference
  // representations.
  ctx_ = ComputeNormalization(reference);
  reference_reps_.clear();
  reference_workloads_.clear();
  for (const Experiment& e : reference.experiments()) {
    WPRED_ASSIGN_OR_RETURN(
        Matrix rep, BuildRepresentation(config_.representation, e,
                                        selected_features_, ctx_));
    reference_reps_.push_back(std::move(rep));
    reference_workloads_.push_back(e.workload);
  }

  // Stage 3: scaling models per (workload, terminal count).
  pairwise_.clear();
  single_.clear();
  std::set<std::pair<std::string, int>> keys;
  for (const Experiment& e : reference.experiments()) {
    keys.insert({e.workload, e.terminals});
  }
  for (const auto& [workload, terminals] : keys) {
    WPRED_ASSIGN_OR_RETURN(
        std::vector<SkuPerfPoint> points,
        CollectScalingPoints(reference, workload, terminals,
                             config_.subsamples));
    if (DistinctSkuValues(points).size() < 2) continue;  // single-SKU corpus
    PairwiseScalingModel pairwise;
    WPRED_RETURN_IF_ERROR(pairwise.Fit(config_.strategy, points));
    pairwise_[{workload, terminals}] = std::move(pairwise);
    SingleScalingModel single;
    WPRED_RETURN_IF_ERROR(single.Fit(config_.strategy, points));
    single_[{workload, terminals}] = std::move(single);
  }
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<Pipeline::WorkloadDistance>> Pipeline::RankWorkloads(
    const Experiment& observed) const {
  if (!fitted_) return Status::FailedPrecondition("pipeline not fitted");
  WPRED_ASSIGN_OR_RETURN(
      Matrix rep, BuildRepresentation(config_.representation, observed,
                                      selected_features_, ctx_));
  std::map<std::string, std::pair<double, size_t>> totals;  // sum, count
  for (size_t i = 0; i < reference_reps_.size(); ++i) {
    WPRED_ASSIGN_OR_RETURN(
        const double d,
        MeasureDistance(config_.measure, rep, reference_reps_[i]));
    auto& [sum, count] = totals[reference_workloads_[i]];
    sum += d;
    count += 1;
  }
  std::vector<WorkloadDistance> ranked;
  ranked.reserve(totals.size());
  for (const auto& [workload, agg] : totals) {
    ranked.push_back({workload, agg.first / static_cast<double>(agg.second)});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const WorkloadDistance& a, const WorkloadDistance& b) {
              return a.mean_distance < b.mean_distance;
            });
  return ranked;
}

Result<const PairwiseScalingModel*> Pipeline::PairwiseModelFor(
    const std::string& workload, int terminals) const {
  // Exact (workload, terminals) first, then the closest terminal count.
  const auto exact = pairwise_.find({workload, terminals});
  if (exact != pairwise_.end()) return &exact->second;
  const PairwiseScalingModel* best = nullptr;
  int best_gap = std::numeric_limits<int>::max();
  for (const auto& [key, model] : pairwise_) {
    if (key.first != workload) continue;
    const int gap = std::abs(key.second - terminals);
    if (gap < best_gap) {
      best_gap = gap;
      best = &model;
    }
  }
  if (best == nullptr) {
    return Status::NotFound("no scaling model for workload " + workload);
  }
  return best;
}

Result<const SingleScalingModel*> Pipeline::SingleModelFor(
    const std::string& workload, int terminals) const {
  const auto exact = single_.find({workload, terminals});
  if (exact != single_.end()) return &exact->second;
  const SingleScalingModel* best = nullptr;
  int best_gap = std::numeric_limits<int>::max();
  for (const auto& [key, model] : single_) {
    if (key.first != workload) continue;
    const int gap = std::abs(key.second - terminals);
    if (gap < best_gap) {
      best_gap = gap;
      best = &model;
    }
  }
  if (best == nullptr) {
    return Status::NotFound("no scaling model for workload " + workload);
  }
  return best;
}

Result<Pipeline::Prediction> Pipeline::PredictThroughput(
    const Experiment& observed, int target_cpus) const {
  if (!fitted_) return Status::FailedPrecondition("pipeline not fitted");
  WPRED_ASSIGN_OR_RETURN(std::vector<WorkloadDistance> ranked,
                         RankWorkloads(observed));
  if (ranked.empty()) return Status::FailedPrecondition("no reference workloads");

  Prediction prediction;
  prediction.reference_workload = ranked.front().workload;
  prediction.similarity_distance = ranked.front().mean_distance;

  const double from = observed.cpus;
  const double to = target_cpus;
  const double perf = observed.perf.throughput_tps;
  if (config_.context == ModelContext::kPairwise) {
    WPRED_ASSIGN_OR_RETURN(
        const PairwiseScalingModel* model,
        PairwiseModelFor(prediction.reference_workload, observed.terminals));
    Result<double> transition =
        model->PredictTransitionScaled(from, to, perf, observed.data_group);
    if (!transition.ok()) {
      // Unseen SKU pair: fall back to the single curve.
      WPRED_ASSIGN_OR_RETURN(
          const SingleScalingModel* single,
          SingleModelFor(prediction.reference_workload, observed.terminals));
      transition = single->PredictTransition(from, to, perf,
                                             observed.data_group);
    }
    WPRED_ASSIGN_OR_RETURN(prediction.throughput_tps, std::move(transition));
  } else {
    WPRED_ASSIGN_OR_RETURN(
        const SingleScalingModel* single,
        SingleModelFor(prediction.reference_workload, observed.terminals));
    WPRED_ASSIGN_OR_RETURN(
        prediction.throughput_tps,
        single->PredictTransition(from, to, perf, observed.data_group));
  }
  return prediction;
}

}  // namespace wpred
