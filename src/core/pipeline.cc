#include "core/pipeline.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/parallel.h"
#include "common/string_util.h"
#include "featsel/registry.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "similarity/measures.h"

namespace wpred {

namespace {

// Uniform message for every entry point that needs a fitted pipeline, so
// callers (and their logs) see which call was premature and what to do.
Status NotFittedError(const char* method) {
  return Status::FailedPrecondition(
      StrFormat("Pipeline::%s called before a successful Fit(); fit a "
                "reference corpus (>= 2 experiments surviving the quality "
                "gate) first",
                method));
}

}  // namespace

Status PipelineConfig::Validate() const {
  if (selector.empty()) {
    return Status::InvalidArgument("PipelineConfig::selector must be set");
  }
  if (measure.empty()) {
    return Status::InvalidArgument("PipelineConfig::measure must be set");
  }
  if (strategy.empty()) {
    return Status::InvalidArgument("PipelineConfig::strategy must be set");
  }
  if (top_k == 0) {
    return Status::InvalidArgument(
        "PipelineConfig::top_k must be >= 1 (got 0)");
  }
  if (subsamples == 0) {
    return Status::InvalidArgument(
        "PipelineConfig::subsamples must be >= 1 (got 0)");
  }
  if (num_threads < 0) {
    return Status::InvalidArgument(
        StrFormat("PipelineConfig::num_threads must be >= 0 (0 = process "
                  "default); got %d",
                  num_threads));
  }
  if (similarity_sketch_bins == 1) {
    return Status::InvalidArgument(
        "PipelineConfig::similarity_sketch_bins must be 0 (default), >= 2, "
        "or negative (sketch tier disabled); a one-bin histogram can never "
        "separate traces");
  }
  if (quality_gate) {
    if (!(quality.mad_outlier_threshold > 0.0) ||
        !std::isfinite(quality.mad_outlier_threshold)) {
      return Status::InvalidArgument(StrFormat(
          "QualityPolicy::mad_outlier_threshold must be a positive finite "
          "number; got %g",
          quality.mad_outlier_threshold));
    }
    if (!(quality.stuck_run_fraction > 0.0) ||
        quality.stuck_run_fraction > 1.0) {
      return Status::InvalidArgument(StrFormat(
          "QualityPolicy::stuck_run_fraction must be in (0, 1]; got %g",
          quality.stuck_run_fraction));
    }
    if (!(quality.max_bad_fraction >= 0.0) || quality.max_bad_fraction > 1.0) {
      return Status::InvalidArgument(StrFormat(
          "QualityPolicy::max_bad_fraction must be in [0, 1]; got %g",
          quality.max_bad_fraction));
    }
    if (quality.min_samples < 2) {
      return Status::InvalidArgument(StrFormat(
          "QualityPolicy::min_samples must be >= 2 (interpolation needs two "
          "finite anchors); got %zu",
          quality.min_samples));
    }
  }
  return Status::OK();
}

// Stage 0: data-quality gate. Repairable experiments are repaired;
// unrepairable ones are quarantined into fit_report_ so one corrupt run
// cannot abort the whole fit.
Result<ExperimentCorpus> Pipeline::GateReference(
    const ExperimentCorpus& reference) {
  fit_report_ = CorpusQualityReport{};
  if (!config_.quality_gate) return reference;
  obs::Span gate_span("quality_gate");
  ExperimentCorpus gated;
  WPRED_ASSIGN_OR_RETURN(gated,
                         GateCorpus(reference, config_.quality, &fit_report_));
  WPRED_COUNT_ADD("pipeline.fit_experiments_quarantined",
                  reference.size() - gated.size());
  if (gated.size() < 2) {
    return Status::FailedPrecondition(
        StrFormat("only %zu of %zu reference experiments survived the "
                  "quality gate: ",
                  gated.size(), reference.size()) +
        fit_report_.Summary());
  }
  return gated;
}

// Stage 1: feature selection on aggregate observations.
Status Pipeline::SelectFeatures(const ExperimentCorpus& gated) {
  obs::Span selection_span("feature_selection");
  WPRED_ASSIGN_OR_RETURN(AggregateObservations aggregates,
                         BuildAggregateObservations(gated, config_.subsamples));
  WPRED_ASSIGN_OR_RETURN(std::unique_ptr<FeatureSelector> selector,
                         CreateSelector(config_.selector));
  selector->set_num_threads(config_.num_threads);
  WPRED_ASSIGN_OR_RETURN(Vector scores,
                         selector->ScoreFeatures(aggregates.x,
                                                 aggregates.labels));
  if (config_.representation == Representation::kMts) {
    // MTS can only represent resource features; exclude plan features from
    // the ranking by zeroing them below every resource feature.
    for (size_t f = kNumResourceFeatures; f < scores.size(); ++f) {
      scores[f] = -std::numeric_limits<double>::infinity();
    }
  }
  ranking_ = ScoresToRanking(scores);
  selected_features_ = ranking_.TopK(config_.top_k);
  if (config_.representation == Representation::kMts) {
    // Defensive: drop any plan feature that slipped in via k > 7.
    std::vector<size_t> resource_only;
    for (size_t f : selected_features_) {
      if (f < kNumResourceFeatures) resource_only.push_back(f);
    }
    selected_features_ = std::move(resource_only);
    if (selected_features_.empty()) {
      return Status::FailedPrecondition(
          "MTS representation selected no resource features");
    }
  }
  return Status::OK();
}

Status Pipeline::Fit(const ExperimentCorpus& reference) {
  WPRED_RETURN_IF_ERROR(config_.Validate());
  if (config_.enable_metrics) obs::SetMetricsEnabled(true);
  obs::Span fit_span("pipeline.fit");
  WPRED_COUNT_ADD("pipeline.fit_calls", 1);
  if (reference.size() < 2) {
    return Status::InvalidArgument("reference corpus too small");
  }
  fitted_ = false;
  WPRED_ASSIGN_OR_RETURN(ExperimentCorpus gated, GateReference(reference));
  WPRED_RETURN_IF_ERROR(SelectFeatures(gated));
  return FitFromSelection(std::move(gated));
}

Status Pipeline::Refit(const ExperimentCorpus& reference) {
  if (!(config_.incremental_refit && fitted_)) return Fit(reference);
  WPRED_RETURN_IF_ERROR(config_.Validate());
  if (config_.enable_metrics) obs::SetMetricsEnabled(true);
  obs::Span refit_span("pipeline.refit");
  WPRED_COUNT_ADD("pipeline.refit_calls", 1);
  if (reference.size() < 2) {
    return Status::InvalidArgument("reference corpus too small");
  }
  // Warm path: the fitted ranking_ / selected_features_ carry over; only
  // the corpus-dependent stages rerun.
  fitted_ = false;
  WPRED_ASSIGN_OR_RETURN(ExperimentCorpus gated, GateReference(reference));
  return FitFromSelection(std::move(gated));
}

// Stages 2–3 against the current ranking_/selected_features_.
Status Pipeline::FitFromSelection(ExperimentCorpus gated) {
  // Stage 2: similarity machinery — shared normalisation + reference
  // representations.
  {
    obs::Span representation_span("representation_build");
    ctx_ = ComputeNormalization(gated);
    WPRED_ASSIGN_OR_RETURN(
        std::vector<Matrix> reference_reps,
        ParallelMap<Matrix>(gated.size(), config_.num_threads,
                            [&](size_t i) -> Result<Matrix> {
                              return BuildRepresentation(
                                  config_.representation, gated[i],
                                  selected_features_, ctx_);
                            }));
    WPRED_COUNT_ADD("pipeline.representations_built", gated.size());
    // The engine owns the reference representations; it also validates the
    // measure name up front, so a typo fails Fit() instead of the first
    // prediction.
    WPRED_ASSIGN_OR_RETURN(
        SimilarityQueryEngine engine,
        SimilarityQueryEngine::Build(std::move(reference_reps),
                                     config_.measure, /*window=*/0,
                                     config_.num_threads,
                                     config_.similarity_shard_traces,
                                     config_.similarity_sketch_bins));
    query_engine_ = std::move(engine);
  }
  reference_workloads_.clear();
  for (const Experiment& e : gated.experiments()) {
    reference_workloads_.push_back(e.workload);
  }

  // Stage 3: scaling models per (workload, terminal count).
  obs::Span models_span("model_fit");
  pairwise_.clear();
  single_.clear();
  std::set<std::pair<std::string, int>> keys;
  for (const Experiment& e : gated.experiments()) {
    keys.insert({e.workload, e.terminals});
  }
  for (const auto& [workload, terminals] : keys) {
    WPRED_ASSIGN_OR_RETURN(
        std::vector<SkuPerfPoint> points,
        CollectScalingPoints(gated, workload, terminals,
                             config_.subsamples));
    if (DistinctSkuValues(points).size() < 2) continue;  // single-SKU corpus
    PairwiseScalingModel pairwise;
    WPRED_RETURN_IF_ERROR(pairwise.Fit(config_.strategy, points));
    pairwise_[{workload, terminals}] = std::move(pairwise);
    SingleScalingModel single;
    WPRED_RETURN_IF_ERROR(single.Fit(config_.strategy, points));
    single_[{workload, terminals}] = std::move(single);
    WPRED_COUNT_ADD("pipeline.scaling_models_fit", 2);
  }
  reference_corpus_ = std::move(gated);
  fitted_ = true;
  return Status::OK();
}

Result<Pipeline::PreparedObservation> Pipeline::PrepareObserved(
    const Experiment& observed) const {
  obs::Span prepare_span("quality_gate");
  PreparedObservation prepared;
  prepared.repaired = observed;
  prepared.features = selected_features_;
  if (!config_.quality_gate) return prepared;

  WPRED_ASSIGN_OR_RETURN(const DataQualityReport report,
                         RepairExperiment(prepared.repaired, config_.quality));
  const std::vector<size_t> unusable = report.UnusableFeatures();
  if (unusable.empty()) return prepared;

  auto is_unusable = [&unusable](size_t f) {
    return std::find(unusable.begin(), unusable.end(), f) != unusable.end();
  };
  std::vector<size_t> healthy;
  size_t lost = 0;
  for (size_t f : selected_features_) {
    if (is_unusable(f)) {
      ++lost;
    } else {
      healthy.push_back(f);
    }
  }
  if (lost == 0) return prepared;  // faults hit only unselected features

  // Refill from the fitted importance ranking: next-best features that are
  // healthy in this observation and expressible by the representation.
  std::vector<size_t> substitutes;
  for (size_t f : ranking_.TopK(ranking_.ranks.size())) {
    if (substitutes.size() == lost) break;
    if (is_unusable(f)) continue;
    if (std::find(selected_features_.begin(), selected_features_.end(), f) !=
        selected_features_.end()) {
      continue;
    }
    if (config_.representation == Representation::kMts &&
        f >= kNumResourceFeatures) {
      continue;  // MTS cannot represent plan features
    }
    substitutes.push_back(f);
  }
  prepared.features = std::move(healthy);
  prepared.features.insert(prepared.features.end(), substitutes.begin(),
                           substitutes.end());
  if (prepared.features.empty()) {
    std::vector<std::string> ids;
    for (size_t f : unusable) ids.push_back(StrFormat("%zu", f));
    return Status::FailedPrecondition(
        "no healthy features left for similarity: selected features are all "
        "dead or stuck [" +
        Join(ids, ",") + "]; telemetry: " + report.Summary());
  }
  prepared.degraded = true;
  return prepared;
}

Result<std::vector<Pipeline::WorkloadDistance>> Pipeline::RankPrepared(
    const PreparedObservation& observation) const {
  obs::Span rank_span("similarity_ranking");
  WPRED_ASSIGN_OR_RETURN(
      Matrix rep,
      BuildRepresentation(config_.representation, observation.repaired,
                          observation.features, ctx_));
  // Distances compute in parallel into per-reference slots; the per-workload
  // aggregation below runs after the join in reference order, keeping the
  // ranking bit-identical at any thread count. The healthy path scans the
  // query engine's cached representations; degraded feature sets don't match
  // those, so they rebuild representations over the effective features from
  // the gated corpus.
  Vector distances;
  if (observation.degraded) {
    std::vector<Matrix> rebuilt;
    WPRED_ASSIGN_OR_RETURN(
        rebuilt,
        ParallelMap<Matrix>(reference_corpus_.size(), config_.num_threads,
                            [&](size_t i) -> Result<Matrix> {
                              return BuildRepresentation(
                                  config_.representation, reference_corpus_[i],
                                  observation.features, ctx_);
                            }));
    WPRED_ASSIGN_OR_RETURN(
        distances,
        ParallelMap<double>(rebuilt.size(), config_.num_threads,
                            [&](size_t i) -> Result<double> {
                              return MeasureDistance(config_.measure, rep,
                                                     rebuilt[i]);
                            }));
  } else {
    WPRED_ASSIGN_OR_RETURN(distances,
                           query_engine_->Distances(rep, config_.num_threads));
  }
  std::map<std::string, std::pair<double, size_t>> totals;  // sum, count
  for (size_t i = 0; i < distances.size(); ++i) {
    auto& [sum, count] = totals[reference_workloads_[i]];
    sum += distances[i];
    count += 1;
  }
  std::vector<WorkloadDistance> ranked;
  ranked.reserve(totals.size());
  for (const auto& [workload, agg] : totals) {
    ranked.push_back({workload, agg.first / static_cast<double>(agg.second)});
  }
  // Tie-break on the workload name: totals is keyed by workload, so names
  // are unique and equal mean distances (duplicated reference telemetry,
  // symmetric corpora) order identically on every platform instead of
  // inheriting std::sort's unspecified ordering.
  std::sort(ranked.begin(), ranked.end(),
            [](const WorkloadDistance& a, const WorkloadDistance& b) {
              if (a.mean_distance != b.mean_distance) {
                return a.mean_distance < b.mean_distance;
              }
              return a.workload < b.workload;
            });
  return ranked;
}

Result<std::vector<Neighbor>> Pipeline::NearestReferences(
    const Experiment& observed, size_t k) const {
  if (!fitted_) return NotFittedError("NearestReferences");
  if (k == 0) {
    return Status::InvalidArgument(
        "Pipeline::NearestReferences needs k >= 1");
  }
  obs::Span span("similarity_query");
  WPRED_ASSIGN_OR_RETURN(const PreparedObservation prepared,
                         PrepareObserved(observed));
  WPRED_ASSIGN_OR_RETURN(
      const Matrix rep,
      BuildRepresentation(config_.representation, prepared.repaired,
                          prepared.features, ctx_));
  if (prepared.degraded) {
    // Degraded feature sets don't match the engine's cached representations;
    // build a throwaway engine over the effective features.
    WPRED_ASSIGN_OR_RETURN(
        std::vector<Matrix> rebuilt,
        ParallelMap<Matrix>(reference_corpus_.size(), config_.num_threads,
                            [&](size_t i) -> Result<Matrix> {
                              return BuildRepresentation(
                                  config_.representation, reference_corpus_[i],
                                  prepared.features, ctx_);
                            }));
    WPRED_ASSIGN_OR_RETURN(
        const SimilarityQueryEngine engine,
        SimilarityQueryEngine::Build(std::move(rebuilt), config_.measure,
                                     /*window=*/0, config_.num_threads,
                                     config_.similarity_shard_traces,
                                     config_.similarity_sketch_bins));
    return engine.RankNeighbors(rep, k);
  }
  return query_engine_->RankNeighbors(rep, k);
}

Result<std::vector<Pipeline::WorkloadDistance>> Pipeline::RankWorkloads(
    const Experiment& observed) const {
  if (!fitted_) return NotFittedError("RankWorkloads");
  WPRED_ASSIGN_OR_RETURN(const PreparedObservation prepared,
                         PrepareObserved(observed));
  return RankPrepared(prepared);
}

Result<const PairwiseScalingModel*> Pipeline::PairwiseModelFor(
    const std::string& workload, int terminals) const {
  // Exact (workload, terminals) first, then the closest terminal count.
  const auto exact = pairwise_.find({workload, terminals});
  if (exact != pairwise_.end()) return &exact->second;
  const PairwiseScalingModel* best = nullptr;
  int best_gap = std::numeric_limits<int>::max();
  for (const auto& [key, model] : pairwise_) {
    if (key.first != workload) continue;
    const int gap = std::abs(key.second - terminals);
    if (gap < best_gap) {
      best_gap = gap;
      best = &model;
    }
  }
  if (best == nullptr) {
    return Status::NotFound("no scaling model for workload " + workload);
  }
  return best;
}

Result<const SingleScalingModel*> Pipeline::SingleModelFor(
    const std::string& workload, int terminals) const {
  const auto exact = single_.find({workload, terminals});
  if (exact != single_.end()) return &exact->second;
  const SingleScalingModel* best = nullptr;
  int best_gap = std::numeric_limits<int>::max();
  for (const auto& [key, model] : single_) {
    if (key.first != workload) continue;
    const int gap = std::abs(key.second - terminals);
    if (gap < best_gap) {
      best_gap = gap;
      best = &model;
    }
  }
  if (best == nullptr) {
    return Status::NotFound("no scaling model for workload " + workload);
  }
  return best;
}

Result<Pipeline::Prediction> Pipeline::PredictThroughput(
    const Experiment& observed, int target_cpus) const {
  obs::Span predict_span("pipeline.predict");
  WPRED_COUNT_ADD("pipeline.predict_calls", 1);
  if (!fitted_) return NotFittedError("PredictThroughput");
  if (!std::isfinite(observed.perf.throughput_tps)) {
    return Status::NumericalError(
        "observed throughput is not finite; cannot scale a corrupt target");
  }
  WPRED_ASSIGN_OR_RETURN(const PreparedObservation prepared,
                         PrepareObserved(observed));
  WPRED_ASSIGN_OR_RETURN(std::vector<WorkloadDistance> ranked,
                         RankPrepared(prepared));
  if (ranked.empty()) return Status::FailedPrecondition("no reference workloads");
  if (prepared.degraded) WPRED_COUNT_ADD("pipeline.predict_degraded", 1);

  Prediction prediction;
  prediction.reference_workload = ranked.front().workload;
  prediction.similarity_distance = ranked.front().mean_distance;
  prediction.degraded = prepared.degraded;
  prediction.effective_features = prepared.features;

  obs::Span model_span("model_predict");
  const double from = observed.cpus;
  const double to = target_cpus;
  const double perf = observed.perf.throughput_tps;
  if (config_.context == ModelContext::kPairwise) {
    WPRED_ASSIGN_OR_RETURN(
        const PairwiseScalingModel* model,
        PairwiseModelFor(prediction.reference_workload, observed.terminals));
    Result<double> transition =
        model->PredictTransitionScaled(from, to, perf, observed.data_group);
    if (!transition.ok()) {
      // Unseen SKU pair: fall back to the single curve.
      WPRED_ASSIGN_OR_RETURN(
          const SingleScalingModel* single,
          SingleModelFor(prediction.reference_workload, observed.terminals));
      transition = single->PredictTransition(from, to, perf,
                                             observed.data_group);
    }
    WPRED_ASSIGN_OR_RETURN(prediction.throughput_tps, std::move(transition));
  } else {
    WPRED_ASSIGN_OR_RETURN(
        const SingleScalingModel* single,
        SingleModelFor(prediction.reference_workload, observed.terminals));
    WPRED_ASSIGN_OR_RETURN(
        prediction.throughput_tps,
        single->PredictTransition(from, to, perf, observed.data_group));
  }
  if (!std::isfinite(prediction.throughput_tps)) {
    return Status::NumericalError(
        "scaling model produced a non-finite throughput for reference " +
        prediction.reference_workload);
  }
  return prediction;
}

}  // namespace wpred
