#ifndef WPRED_CORE_PIPELINE_H_
#define WPRED_CORE_PIPELINE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/workbench.h"
#include "featsel/ranking.h"
#include "predict/scaling_model.h"
#include "similarity/query.h"
#include "similarity/representation.h"
#include "telemetry/experiment.h"
#include "telemetry/quality.h"

namespace wpred {

/// Configuration of the end-to-end prediction pipeline — one choice per
/// stage of the paper's Figure 2, defaulting to the combination the paper's
/// own end-to-end experiment uses (Section 6.2.3): RFE + logistic
/// regression for top-7 features, Hist-FP + L2,1 similarity, pairwise SVR
/// scaling models.
struct PipelineConfig {
  std::string selector = "RFE LogReg";
  size_t top_k = 7;
  Representation representation = Representation::kHistFp;
  std::string measure = "L2,1-Norm";
  std::string strategy = "SVM";
  ModelContext context = ModelContext::kPairwise;
  /// Sub-experiments per experiment for feature selection / augmentation.
  size_t subsamples = 10;
  /// Worker threads for the parallel stages (wrapper feature selection,
  /// reference-representation building, similarity ranking); < 1 means the
  /// process default (WPRED_THREADS env var, else hardware concurrency), 1
  /// forces the serial path. Results are bit-identical at any setting.
  int num_threads = 0;
  /// Traces per contiguous shard of the reference corpus inside the
  /// similarity engine (scheduling/layout granularity for the parallel
  /// similarity stages); 0 means ShardedCorpus::kDefaultShardTraces.
  /// Never changes results — only how work is laid out and scheduled.
  size_t similarity_shard_traces = 0;
  /// Histogram width of the similarity engine's tier-0 sketch filter
  /// (similarity/sketch.h): 0 means TraceSketchSet::kDefaultBins, >= 2 is
  /// honoured as-is, < 0 disables the sketch tier (the pre-sketch cascade).
  /// 1 is rejected by Validate(). Only the DTW measures sketch; like the
  /// shard width, the knob never changes results — only pruning effort.
  int similarity_sketch_bins = 0;
  /// Run the data-quality gate: Fit() repairs or quarantines dirty
  /// reference experiments; prediction repairs observed telemetry and falls
  /// back to the next-ranked healthy features when a selected feature's
  /// sensor is dead or stuck. Disabled, dirty telemetry flows through
  /// unchecked (the pre-gate behaviour).
  bool quality_gate = true;
  QualityPolicy quality;
  /// Turns on the process-wide observability layer (obs/) for this and
  /// every later run: per-stage spans, counters, and histograms, exported
  /// via obs::DumpMetricsJson. The WPRED_METRICS env var enables the same
  /// switch without code changes; false here leaves the env setting alone.
  /// Metrics never change numeric results — only record them.
  bool enable_metrics = false;
  /// Warm-started model refresh for the streaming path: Refit() on an
  /// already-fitted pipeline reuses the fitted feature ranking and
  /// selection — skipping the selection stage, the dominant cost with
  /// wrapper selectors — and refits normalisation, representations, and
  /// scaling models against the new corpus. Off (the default), Refit() is
  /// exactly Fit(). Predictions after an incremental Refit match a full
  /// Fit on the same corpus whenever that full fit would select the same
  /// features (StreamWarmRefitTest pins this).
  bool incremental_refit = false;

  /// Range-checks every knob and returns the first violation as
  /// Status::InvalidArgument (negative num_threads, zero top_k/subsamples,
  /// empty stage names, out-of-range quality-gate thresholds). Fit() calls
  /// this at entry, so a misconfigured pipeline fails fast with a message
  /// instead of tripping a debug-only DCHECK deep in a stage.
  Status Validate() const;
};

/// The paper's primary artifact: feature selection → workload similarity →
/// resource scaling prediction, wired end to end.
///
/// Fit() consumes a reference corpus of monitored workloads across SKUs; it
/// (0) gates the corpus for data quality — repairing what it can and
/// quarantining unrepairable experiments into fit_report() instead of
/// aborting, (1) runs the configured feature-selection strategy on
/// aggregate observations to pick the top-k features, (2) freezes a shared
/// normalisation context and the reference representations, and (3) fits a
/// scaling model per reference workload × terminal count.
///
/// PredictThroughput() takes telemetry of a (new) workload observed on one
/// SKU, finds the most similar reference workload in representation space,
/// and transfers that workload's scaling model to predict throughput on the
/// target SKU. Observed telemetry passes through the same quality gate:
/// repairable damage is repaired, dead/stuck selected features are replaced
/// by the next-ranked healthy features (rebuilding reference
/// representations to match), and telemetry beyond repair yields a precise
/// non-OK Status — never a silently garbage prediction.
class Pipeline {
 public:
  explicit Pipeline(PipelineConfig config) : config_(std::move(config)) {}

  Status Fit(const ExperimentCorpus& reference);

  /// Refreshes the fitted pipeline against a new reference corpus. With
  /// `config().incremental_refit` set and a previous successful Fit(), the
  /// fitted feature ranking and selection carry over and only the
  /// corpus-dependent stages rerun (quality gate, normalisation,
  /// representations + similarity engine, scaling models); otherwise this
  /// is exactly Fit(). On failure the pipeline is unfitted, like a failed
  /// Fit() — callers who need the old model to survive a failed refresh
  /// refresh a copy (the serving layer's snapshot path already works that
  /// way).
  Status Refit(const ExperimentCorpus& reference);

  bool fitted() const { return fitted_; }
  const PipelineConfig& config() const { return config_; }

  /// Re-points the parallelism knob after Fit(). Results are bit-identical
  /// at any setting (DESIGN.md §7), so this only chooses *how* later calls
  /// execute: the serving layer fits with a parallel knob, then pins
  /// prediction to 1 so the read path runs inline and touches zero
  /// thread-pool code (no pool mutex on reads).
  void set_num_threads(int num_threads) { config_.num_threads = num_threads; }
  // Accessors below return empty/default values before a successful Fit();
  // they never dereference unfitted state. Every value- or Status-producing
  // entry point (RankWorkloads, NearestReferences, PredictThroughput)
  // instead reports a descriptive FailedPrecondition when called early.
  const std::vector<size_t>& selected_features() const {
    return selected_features_;
  }
  /// Full importance ranking behind selected_features() — the fallback
  /// order for predict-time feature substitution.
  const FeatureRanking& feature_ranking() const { return ranking_; }
  const NormalizationContext& normalization() const { return ctx_; }
  /// Per-experiment quality outcome of the last Fit() (empty when the
  /// quality gate is disabled).
  const CorpusQualityReport& fit_report() const { return fit_report_; }

  /// Mean representation distance from `observed` to each reference
  /// workload, ascending (most similar first).
  struct WorkloadDistance {
    std::string workload;
    double mean_distance;
  };
  Result<std::vector<WorkloadDistance>> RankWorkloads(
      const Experiment& observed) const;

  /// The k reference experiments most similar to `observed`, ascending by
  /// (distance, index). Indices refer to the gated reference corpus (see
  /// reference_workloads() for their workload names). DTW measures run the
  /// lower-bound-pruned cascade of similarity/query.h; the result is
  /// bit-identical to an exhaustive scan.
  Result<std::vector<Neighbor>> NearestReferences(const Experiment& observed,
                                                  size_t k) const;

  /// Workload name of each gated reference experiment, in corpus order
  /// (parallel to NearestReferences() indices).
  const std::vector<std::string>& reference_workloads() const {
    return reference_workloads_;
  }

  /// Shards of the fitted similarity engine's reference corpus (0 before a
  /// successful Fit(), or when the measure stage is disabled). The serving
  /// layer exports this so operators can see the scheduling granularity a
  /// snapshot serves with.
  size_t reference_shards() const {
    return query_engine_.has_value() ? query_engine_->num_shards() : 0;
  }

  /// Effective tier-0 sketch histogram width of the fitted similarity
  /// engine (0 before a successful Fit(), when the sketch tier is disabled,
  /// or for non-DTW measures). Exported by serving snapshots alongside
  /// reference_shards().
  int sketch_bins() const {
    return query_engine_.has_value() ? query_engine_->sketch_bins() : 0;
  }

  /// Full end-to-end prediction.
  struct Prediction {
    double throughput_tps = 0.0;
    std::string reference_workload;
    double similarity_distance = 0.0;
    /// True when dead/stuck selected features were replaced by fallback
    /// features before ranking (quality gate only).
    bool degraded = false;
    /// The features the similarity stage actually used (equals the fitted
    /// selection unless degraded).
    std::vector<size_t> effective_features;
  };
  Result<Prediction> PredictThroughput(const Experiment& observed,
                                       int target_cpus) const;

 private:
  // Fit stages, shared by Fit() and the warm path of Refit(). GateReference
  // runs stage 0 into fit_report_; SelectFeatures runs stage 1 into
  // ranking_/selected_features_; FitFromSelection runs stages 2–3 against
  // the current selection and commits the fitted state.
  Result<ExperimentCorpus> GateReference(const ExperimentCorpus& reference);
  Status SelectFeatures(const ExperimentCorpus& gated);
  Status FitFromSelection(ExperimentCorpus gated);

  /// Observed telemetry after the quality gate: repaired copy plus the
  /// effective (possibly substituted) feature set.
  struct PreparedObservation {
    Experiment repaired;
    std::vector<size_t> features;
    bool degraded = false;
  };
  Result<PreparedObservation> PrepareObserved(const Experiment& observed) const;
  Result<std::vector<WorkloadDistance>> RankPrepared(
      const PreparedObservation& observation) const;

  Result<const PairwiseScalingModel*> PairwiseModelFor(
      const std::string& workload, int terminals) const;
  Result<const SingleScalingModel*> SingleModelFor(const std::string& workload,
                                                   int terminals) const;

  PipelineConfig config_;
  bool fitted_ = false;

  std::vector<size_t> selected_features_;
  FeatureRanking ranking_;
  NormalizationContext ctx_;
  CorpusQualityReport fit_report_;
  // Gated reference corpus, kept to rebuild representations when predict-time
  // degradation changes the feature set.
  ExperimentCorpus reference_corpus_;
  // Owns the reference representations (one per reference experiment) plus
  // the envelope cache behind NearestReferences(); engaged by Fit().
  std::optional<SimilarityQueryEngine> query_engine_;
  std::vector<std::string> reference_workloads_;
  // Scaling models keyed by (workload, terminals).
  std::map<std::pair<std::string, int>, PairwiseScalingModel> pairwise_;
  std::map<std::pair<std::string, int>, SingleScalingModel> single_;
};

}  // namespace wpred

#endif  // WPRED_CORE_PIPELINE_H_
