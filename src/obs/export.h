#ifndef WPRED_OBS_EXPORT_H_
#define WPRED_OBS_EXPORT_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "obs/json.h"

// Exporters over the metrics + span registries. The JSON document is the
// machine-readable perf trajectory (bench --metrics-json=PATH writes one);
// RenderSpanTree turns its "spans" section back into a flame-style indented
// tree for humans (tools/metrics_summary).

namespace wpred::obs {

/// One consistent snapshot of everything observable: counters, gauges,
/// histograms (non-empty bins only), span aggregates, and the shared
/// thread-pool stats (workers, tasks queued/ran, per-worker busy seconds).
Json MetricsToJson();

/// MetricsToJson() pretty-printed.
std::string DumpMetricsJson();
void DumpMetricsJson(std::ostream& os);
Status WriteMetricsJsonFile(const std::string& path);

/// Flat "kind,name,value" CSV of counters, gauges, and histogram summaries.
void DumpMetricsCsv(std::ostream& os);

/// Renders the "spans" section of a metrics JSON document as an indented
/// tree: one line per path with call count, total seconds, and the share of
/// the parent span's time.
std::string RenderSpanTree(const Json& metrics);

}  // namespace wpred::obs

#endif  // WPRED_OBS_EXPORT_H_
