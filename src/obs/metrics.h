#ifndef WPRED_OBS_METRICS_H_
#define WPRED_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

// Process-wide metrics registry: counters, gauges, and fixed log-scale-bin
// histograms, all safe to record from any thread (including PR 2's pool
// workers). Zero dependencies beyond the standard library.
//
// The overhead contract (DESIGN.md §8): with metrics disabled, every
// instrumentation hook in the hot layers reduces to one relaxed load of one
// atomic bool plus a branch. The WPRED_COUNT_ADD / WPRED_HIST_RECORD /
// WPRED_GAUGE_SET macros additionally cache the registry lookup in a
// function-local static, so the enabled path in a hot loop is one atomic
// add — never a map lookup under the registry mutex.
//
// Instruments have stable addresses for the life of the process:
// MetricsRegistry::ResetAll() zeroes values but never invalidates a pointer
// obtained from GetCounter/GetGauge/GetHistogram.

namespace wpred::obs {

/// Global on/off switch. Initialised from the WPRED_METRICS environment
/// variable ("1"/"true"/"on"/"yes" enable, ""/"0"/"false"/"off"/"no"
/// disable, anything else warns on stderr and stays disabled);
/// SetMetricsEnabled overrides it for the rest of the process. Reading is a
/// single relaxed atomic load.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

namespace internal {

/// Parse outcome for a WPRED_METRICS-style boolean env value; exposed so the
/// rejection path is unit-testable without touching the real environment.
struct EnvBoolParse {
  bool enabled = false;
  bool rejected = false;  // value present but not a recognised boolean
};

/// nullptr / "" / "0" / "false" / "off" / "no" → disabled; "1" / "true" /
/// "on" / "yes" → enabled (ASCII case-insensitive). Anything else →
/// {false, rejected=true} so the caller can warn instead of guessing.
EnvBoolParse ParseMetricsEnv(const char* value);

}  // namespace internal

/// Monotonic event counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-value-wins double gauge (stored as IEEE-754 bits in an atomic).
class Gauge {
 public:
  void Set(double v);
  double value() const;
  void Reset();

 private:
  std::atomic<uint64_t> bits_{0};  // bit pattern of +0.0
};

/// Histogram with fixed log-scale bins. Bin i covers
/// (kMinBound * 2^(i-1), kMinBound * 2^i]; bin 0 holds everything
/// <= kMinBound (including zero and negatives) and the last bin is the
/// overflow. With kMinBound = 1 µs the bins span 1 µs .. ~9 min, which
/// covers every duration this codebase times.
class Histogram {
 public:
  static constexpr int kNumBins = 40;
  static constexpr double kMinBound = 1e-6;

  /// Inclusive upper bound of `bin`; +inf for the overflow bin.
  static double BinUpperBound(int bin);
  /// The bin a value lands in.
  static int BinIndex(double v);

  void Record(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  /// Min/max of recorded values; NaN before the first Record.
  double min() const;
  double max() const;
  std::array<uint64_t, kNumBins> bins() const;

  void Reset();

 private:
  std::atomic<uint64_t> bins_[kNumBins] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};
  std::atomic<uint64_t> min_bits_;  // initialised in Reset()/ctor
  std::atomic<uint64_t> max_bits_;

 public:
  Histogram() { Reset(); }
};

/// Name -> instrument map. Get* creates on first use; instruments live (at a
/// stable address) until process exit.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// Zeroes every instrument (and the span registry is reset separately);
  /// addresses handed out earlier stay valid.
  void ResetAll();

  std::vector<std::pair<std::string, uint64_t>> CounterSnapshot() const;
  std::vector<std::pair<std::string, double>> GaugeSnapshot() const;
  std::vector<std::pair<std::string, const Histogram*>> HistogramSnapshot()
      const;

 private:
  MetricsRegistry() = default;

  // mu_ guards the maps only. The instruments the maps point to are all
  // relaxed atomics updated outside the lock — they are counters, not
  // publication points, so no WPRED_ATOMIC_PUBLISHED and no ordering
  // stronger than relaxed is needed (DESIGN.md §8).
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      WPRED_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      WPRED_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      WPRED_GUARDED_BY(mu_);
};

/// Convenience hooks for cold call sites (one registry lookup per call).
inline void CounterAdd(const char* name, uint64_t n = 1) {
  if (!MetricsEnabled()) return;
  MetricsRegistry::Global().GetCounter(name).Add(n);
}
inline void GaugeSet(const char* name, double v) {
  if (!MetricsEnabled()) return;
  MetricsRegistry::Global().GetGauge(name).Set(v);
}
inline void HistogramRecord(const char* name, double v) {
  if (!MetricsEnabled()) return;
  MetricsRegistry::Global().GetHistogram(name).Record(v);
}

}  // namespace wpred::obs

// Hot-path hooks: disabled => one atomic-bool branch; enabled => one atomic
// op on an instrument resolved once per call site (function-local static).
#define WPRED_COUNT_ADD(name, n)                                         \
  do {                                                                   \
    if (::wpred::obs::MetricsEnabled()) {                                \
      static ::wpred::obs::Counter& wpred_obs_counter_ =                 \
          ::wpred::obs::MetricsRegistry::Global().GetCounter(name);      \
      wpred_obs_counter_.Add(n);                                         \
    }                                                                    \
  } while (0)

#define WPRED_HIST_RECORD(name, v)                                       \
  do {                                                                   \
    if (::wpred::obs::MetricsEnabled()) {                                \
      static ::wpred::obs::Histogram& wpred_obs_histogram_ =             \
          ::wpred::obs::MetricsRegistry::Global().GetHistogram(name);    \
      wpred_obs_histogram_.Record(v);                                    \
    }                                                                    \
  } while (0)

#define WPRED_GAUGE_SET(name, v)                                         \
  do {                                                                   \
    if (::wpred::obs::MetricsEnabled()) {                                \
      static ::wpred::obs::Gauge& wpred_obs_gauge_ =                     \
          ::wpred::obs::MetricsRegistry::Global().GetGauge(name);        \
      wpred_obs_gauge_.Set(v);                                           \
    }                                                                    \
  } while (0)

#endif  // WPRED_OBS_METRICS_H_
