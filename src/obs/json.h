#ifndef WPRED_OBS_JSON_H_
#define WPRED_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

// Minimal zero-dependency JSON value: enough for the metrics exporter, the
// metrics_summary tool, and round-trip tests. Objects preserve insertion
// order (exports stay diff-stable); numbers are doubles printed with %.17g
// so a dump -> parse round trip is bit-exact.

namespace wpred::obs {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}          // NOLINT(runtime/explicit)
  Json(double v) : type_(Type::kNumber), number_(v) {}    // NOLINT(runtime/explicit)
  Json(uint64_t v) : type_(Type::kNumber), number_(static_cast<double>(v)) {}  // NOLINT
  Json(int v) : type_(Type::kNumber), number_(v) {}       // NOLINT(runtime/explicit)
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Json(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT

  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }

  /// Array elements (valid for kArray).
  const std::vector<Json>& items() const { return items_; }
  void Append(Json value) { items_.push_back(std::move(value)); }

  /// Object fields in insertion order (valid for kObject).
  const std::vector<std::pair<std::string, Json>>& fields() const {
    return fields_;
  }
  void Set(std::string key, Json value) {
    fields_.emplace_back(std::move(key), std::move(value));
  }
  /// First field named `key`; null-typed reference if absent.
  const Json& Get(std::string_view key) const;
  bool Has(std::string_view key) const { return !Get(key).is_null(); }

  /// Serialises; indent > 0 pretty-prints with that many spaces per level.
  std::string Dump(int indent = 0) const;

  /// Parses a complete JSON document (rejects trailing garbage).
  static Result<Json> Parse(std::string_view text);

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> fields_;
};

}  // namespace wpred::obs

#endif  // WPRED_OBS_JSON_H_
