#include "obs/trace.h"

#include <algorithm>

namespace wpred::obs {
namespace {

// The active span names on this thread, outermost first. Raw pointers to
// caller-owned literals: pushing is allocation-free until the span closes
// and the joined path is built once.
thread_local std::vector<const char*> tl_span_stack;

std::string JoinStack() {
  std::string path;
  for (const char* name : tl_span_stack) {
    if (!path.empty()) path.push_back('/');
    path += name;
  }
  return path;
}

}  // namespace

SpanRegistry& SpanRegistry::Global() {
  static SpanRegistry* registry = new SpanRegistry();  // leaked, see metrics.cc
  return *registry;
}

void SpanRegistry::Record(const std::string& path, double seconds) {
  MutexLock lock(mu_);
  SpanStats& stats = spans_[path];
  if (stats.count == 0) {
    stats.min_seconds = seconds;
    stats.max_seconds = seconds;
  } else {
    stats.min_seconds = std::min(stats.min_seconds, seconds);
    stats.max_seconds = std::max(stats.max_seconds, seconds);
  }
  ++stats.count;
  stats.total_seconds += seconds;
}

std::map<std::string, SpanStats> SpanRegistry::Snapshot() const {
  MutexLock lock(mu_);
  return spans_;
}

void SpanRegistry::ResetAll() {
  MutexLock lock(mu_);
  spans_.clear();
}

Span::Span(const char* name) {
  if (!MetricsEnabled()) return;
  tl_span_stack.push_back(name);
  active_ = true;
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (!active_) return;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  // Built before the pop so the path includes this span's own name.
  SpanRegistry::Global().Record(JoinStack(), seconds);
  tl_span_stack.pop_back();
}

std::string Span::CurrentPath() { return JoinStack(); }

}  // namespace wpred::obs
