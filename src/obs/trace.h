#ifndef WPRED_OBS_TRACE_H_
#define WPRED_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "obs/metrics.h"

// RAII stage tracing. A Span names the stage it covers; spans nest via a
// thread-local stack, so a span opened while another is active records under
// the parent's path ("pipeline.fit/feature_selection"). Aggregation is by
// path: every (path -> count, total/min/max seconds) entry merges records
// from all threads under one mutex, which makes spans safe to open inside
// ParallelFor bodies — a span on a pool worker roots a fresh path on that
// thread and still lands in the same registry.
//
// Same overhead contract as metrics.h: a Span constructed while metrics are
// disabled is inert — one atomic-bool branch in the constructor and one in
// the destructor, no clock reads, no allocation.

namespace wpred::obs {

struct SpanStats {
  uint64_t count = 0;
  double total_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
};

/// Path-keyed aggregation of completed spans.
class SpanRegistry {
 public:
  static SpanRegistry& Global();

  void Record(const std::string& path, double seconds);
  std::map<std::string, SpanStats> Snapshot() const;
  void ResetAll();

 private:
  SpanRegistry() = default;

  mutable Mutex mu_;
  std::map<std::string, SpanStats> spans_ WPRED_GUARDED_BY(mu_);
};

/// RAII stage timer. `name` must outlive the span (string literals in
/// practice); it becomes one path segment, so it must not contain '/'.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// The calling thread's current span path ("a/b/c"), empty outside any
  /// span. Exposed for tests and for exporters that label worker-side data.
  static std::string CurrentPath();

 private:
  bool active_ = false;
  std::chrono::steady_clock::time_point start_;
};

/// The name most call sites read naturally: time a scope, file under the
/// enclosing span.
using ScopedTimer = Span;

}  // namespace wpred::obs

#endif  // WPRED_OBS_TRACE_H_
