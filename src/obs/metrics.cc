#include "obs/metrics.h"

#include <bit>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace wpred::obs {

namespace internal {

EnvBoolParse ParseMetricsEnv(const char* value) {
  if (value == nullptr) return {false, false};
  std::string lower(value);
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower.empty() || lower == "0" || lower == "false" || lower == "off" ||
      lower == "no") {
    return {false, false};
  }
  if (lower == "1" || lower == "true" || lower == "on" || lower == "yes") {
    return {true, false};
  }
  return {false, true};
}

}  // namespace internal

namespace {

bool EnvEnabled() {
  const char* env = std::getenv("WPRED_METRICS");
  const auto parsed = internal::ParseMetricsEnv(env);
  if (parsed.rejected) {
    std::fprintf(stderr,
                 "wpred: ignoring unrecognised WPRED_METRICS=\"%s\" (want "
                 "0/1/true/false/on/off); metrics stay disabled\n",
                 env);
  }
  return parsed.enabled;
}

// Dynamic-initialised from the environment before main(); hooks afterwards
// are a single relaxed load.
std::atomic<bool> g_enabled{EnvEnabled()};

uint64_t DoubleBits(double v) { return std::bit_cast<uint64_t>(v); }
double BitsDouble(uint64_t b) { return std::bit_cast<double>(b); }

// Lock-free double accumulation / extremum via compare-exchange on the bit
// pattern. Contention is negligible: these run once per coarse event
// (a span end, a fold, a sim run), not per inner-loop iteration.
void AtomicAddDouble(std::atomic<uint64_t>& bits, double delta) {
  uint64_t observed = bits.load(std::memory_order_relaxed);
  while (!bits.compare_exchange_weak(
      observed, DoubleBits(BitsDouble(observed) + delta),
      std::memory_order_relaxed)) {
  }
}

template <typename Better>
void AtomicExtremum(std::atomic<uint64_t>& bits, double v, Better better) {
  uint64_t observed = bits.load(std::memory_order_relaxed);
  for (;;) {
    const double current = BitsDouble(observed);
    if (!std::isnan(current) && !better(v, current)) return;
    if (bits.compare_exchange_weak(observed, DoubleBits(v),
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace

bool MetricsEnabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetMetricsEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

void Gauge::Set(double v) {
  bits_.store(DoubleBits(v), std::memory_order_relaxed);
}

double Gauge::value() const {
  return BitsDouble(bits_.load(std::memory_order_relaxed));
}

void Gauge::Reset() { bits_.store(0, std::memory_order_relaxed); }

double Histogram::BinUpperBound(int bin) {
  if (bin >= kNumBins - 1) return std::numeric_limits<double>::infinity();
  return kMinBound * std::pow(2.0, bin);
}

int Histogram::BinIndex(double v) {
  if (!(v > kMinBound)) return 0;  // <= kMinBound, zero, negative, NaN
  const int bin =
      1 + static_cast<int>(std::ceil(std::log2(v / kMinBound)) - 1.0);
  // Guard the pow/log2 boundary: BinIndex must agree with BinUpperBound.
  if (bin >= kNumBins) return kNumBins - 1;
  if (v <= BinUpperBound(bin - 1)) return bin - 1;
  return bin;
}

void Histogram::Record(double v) {
  if (std::isnan(v)) return;
  bins_[BinIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(sum_bits_, v);
  AtomicExtremum(min_bits_, v, [](double a, double b) { return a < b; });
  AtomicExtremum(max_bits_, v, [](double a, double b) { return a > b; });
}

double Histogram::sum() const {
  return BitsDouble(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::min() const {
  return BitsDouble(min_bits_.load(std::memory_order_relaxed));
}

double Histogram::max() const {
  return BitsDouble(max_bits_.load(std::memory_order_relaxed));
}

std::array<uint64_t, Histogram::kNumBins> Histogram::bins() const {
  std::array<uint64_t, kNumBins> out;
  for (int i = 0; i < kNumBins; ++i) {
    out[i] = bins_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (auto& bin : bins_) bin.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
  const uint64_t nan_bits =
      DoubleBits(std::numeric_limits<double>::quiet_NaN());
  min_bits_.store(nan_bits, std::memory_order_relaxed);
  max_bits_.store(nan_bits, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: instruments may be touched by pool workers parked
  // past static destruction (same rationale as ThreadPool::Shared).
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::CounterSnapshot()
    const {
  MutexLock lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::GaugeSnapshot()
    const {
  MutexLock lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge->value());
  }
  return out;
}

std::vector<std::pair<std::string, const Histogram*>>
MetricsRegistry::HistogramSnapshot() const {
  MutexLock lock(mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.emplace_back(name, histogram.get());
  }
  return out;
}

}  // namespace wpred::obs
