#include "obs/export.h"

#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "common/parallel.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace wpred::obs {
namespace {

Json HistogramToJson(const Histogram& h) {
  Json out = Json::Object();
  out.Set("count", h.count());
  out.Set("sum", h.sum());
  out.Set("min", h.min());
  out.Set("max", h.max());
  Json bins = Json::Array();
  const auto counts = h.bins();
  for (int i = 0; i < Histogram::kNumBins; ++i) {
    if (counts[static_cast<size_t>(i)] == 0) continue;
    Json bin = Json::Object();
    bin.Set("le", Histogram::BinUpperBound(i));
    bin.Set("count", counts[static_cast<size_t>(i)]);
    bins.Append(std::move(bin));
  }
  out.Set("bins", std::move(bins));
  return out;
}

Json PoolToJson() {
  Json out = Json::Object();
  const StealCounters steals = GlobalStealCounters();
  if (!ThreadPool::SharedCreated()) {
    out.Set("workers", 0);
    out.Set("tasks_submitted", 0);
    out.Set("tasks_executed", 0);
    out.Set("tasks_stolen", steals.tasks_stolen);
    out.Set("steal_failures", steals.steal_failures);
    out.Set("busy_seconds", Json::Array());
    return out;
  }
  const ThreadPool& pool = ThreadPool::Shared();
  out.Set("workers", pool.workers());
  out.Set("tasks_submitted", pool.tasks_submitted());
  out.Set("tasks_executed", pool.tasks_executed());
  out.Set("tasks_stolen", steals.tasks_stolen);
  out.Set("steal_failures", steals.steal_failures);
  Json busy = Json::Array();
  for (const double seconds : pool.WorkerBusySeconds()) {
    busy.Append(seconds);
  }
  out.Set("busy_seconds", std::move(busy));
  return out;
}

struct SpanNode {
  const SpanStats* stats = nullptr;
  std::map<std::string, SpanNode> children;  // ordered => stable output
};

void RenderNode(const std::string& name, const SpanNode& node,
                double parent_total, int depth, std::string& out) {
  std::string line(static_cast<size_t>(2 * depth), ' ');
  line += name;
  if (node.stats != nullptr) {
    if (line.size() < 44) line.resize(44, ' ');
    line += StrFormat("  calls=%-6llu total=%9.4fs",
                      static_cast<unsigned long long>(node.stats->count),
                      node.stats->total_seconds);
    if (parent_total > 0.0) {
      line += StrFormat("  %5.1f%% of parent",
                        100.0 * node.stats->total_seconds / parent_total);
    }
  }
  out += line;
  out.push_back('\n');
  const double own_total =
      node.stats != nullptr ? node.stats->total_seconds : parent_total;
  for (const auto& [child_name, child] : node.children) {
    RenderNode(child_name, child, own_total, depth + 1, out);
  }
}

}  // namespace

Json MetricsToJson() {
  Json root = Json::Object();

  Json counters = Json::Object();
  for (const auto& [name, value] :
       MetricsRegistry::Global().CounterSnapshot()) {
    counters.Set(name, value);
  }
  root.Set("counters", std::move(counters));

  Json gauges = Json::Object();
  for (const auto& [name, value] : MetricsRegistry::Global().GaugeSnapshot()) {
    gauges.Set(name, value);
  }
  root.Set("gauges", std::move(gauges));

  Json histograms = Json::Object();
  for (const auto& [name, histogram] :
       MetricsRegistry::Global().HistogramSnapshot()) {
    histograms.Set(name, HistogramToJson(*histogram));
  }
  root.Set("histograms", std::move(histograms));

  Json spans = Json::Array();
  for (const auto& [path, stats] : SpanRegistry::Global().Snapshot()) {
    Json span = Json::Object();
    span.Set("path", path);
    span.Set("count", stats.count);
    span.Set("total_seconds", stats.total_seconds);
    span.Set("min_seconds", stats.min_seconds);
    span.Set("max_seconds", stats.max_seconds);
    spans.Append(std::move(span));
  }
  root.Set("spans", std::move(spans));

  root.Set("parallel", PoolToJson());
  return root;
}

std::string DumpMetricsJson() { return MetricsToJson().Dump(/*indent=*/2); }

void DumpMetricsJson(std::ostream& os) { os << DumpMetricsJson() << "\n"; }

Status WriteMetricsJsonFile(const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  DumpMetricsJson(out);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

void DumpMetricsCsv(std::ostream& os) {
  os << "kind,name,value\n";
  for (const auto& [name, value] :
       MetricsRegistry::Global().CounterSnapshot()) {
    os << "counter," << name << "," << value << "\n";
  }
  for (const auto& [name, value] : MetricsRegistry::Global().GaugeSnapshot()) {
    os << "gauge," << name << "," << FormatCompact(value) << "\n";
  }
  for (const auto& [name, histogram] :
       MetricsRegistry::Global().HistogramSnapshot()) {
    os << "histogram_count," << name << "," << histogram->count() << "\n";
    os << "histogram_sum," << name << "," << FormatCompact(histogram->sum())
       << "\n";
  }
  for (const auto& [path, stats] : SpanRegistry::Global().Snapshot()) {
    os << "span_count," << path << "," << stats.count << "\n";
    os << "span_total_seconds," << path << ","
       << FormatCompact(stats.total_seconds) << "\n";
  }
}

std::string RenderSpanTree(const Json& metrics) {
  const Json& spans = metrics.Get("spans");
  if (spans.type() != Json::Type::kArray || spans.items().empty()) {
    return "(no spans recorded)\n";
  }
  // Paths are '/'-joined segments; materialise the tree, then walk it.
  SpanNode root;
  std::vector<SpanStats> storage;
  storage.reserve(spans.items().size());
  for (const Json& span : spans.items()) {
    SpanStats stats;
    stats.count = static_cast<uint64_t>(span.Get("count").AsNumber());
    stats.total_seconds = span.Get("total_seconds").AsNumber();
    stats.min_seconds = span.Get("min_seconds").AsNumber();
    stats.max_seconds = span.Get("max_seconds").AsNumber();
    storage.push_back(stats);
    SpanNode* node = &root;
    for (const std::string& segment :
         Split(span.Get("path").AsString(), '/')) {
      node = &node->children[segment];
    }
    node->stats = &storage.back();
  }
  std::string out;
  for (const auto& [name, child] : root.children) {
    RenderNode(name, child, 0.0, 0, out);
  }
  return out;
}

}  // namespace wpred::obs
