#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace wpred::obs {
namespace {

const Json& NullJson() {
  static const Json* null = new Json();
  return *null;
}

void AppendEscaped(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void AppendNumber(double v, std::string& out) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; null is the conventional stand-in.
    out += "null";
    return;
  }
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void DumpTo(const Json& j, int indent, int depth, std::string& out) {
  const std::string pad(indent > 0 ? static_cast<size_t>(indent * (depth + 1))
                                   : 0,
                        ' ');
  const std::string close_pad(
      indent > 0 ? static_cast<size_t>(indent * depth) : 0, ' ');
  const char* nl = indent > 0 ? "\n" : "";
  switch (j.type()) {
    case Json::Type::kNull:
      out += "null";
      return;
    case Json::Type::kBool:
      out += j.AsBool() ? "true" : "false";
      return;
    case Json::Type::kNumber:
      AppendNumber(j.AsNumber(), out);
      return;
    case Json::Type::kString:
      AppendEscaped(j.AsString(), out);
      return;
    case Json::Type::kArray: {
      if (j.items().empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      out += nl;
      for (size_t i = 0; i < j.items().size(); ++i) {
        out += pad;
        DumpTo(j.items()[i], indent, depth + 1, out);
        if (i + 1 < j.items().size()) out.push_back(',');
        out += nl;
      }
      out += close_pad;
      out.push_back(']');
      return;
    }
    case Json::Type::kObject: {
      if (j.fields().empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      out += nl;
      for (size_t i = 0; i < j.fields().size(); ++i) {
        out += pad;
        AppendEscaped(j.fields()[i].first, out);
        out += indent > 0 ? ": " : ":";
        DumpTo(j.fields()[i].second, indent, depth + 1, out);
        if (i + 1 < j.fields().size()) out.push_back(',');
        out += nl;
      }
      out += close_pad;
      out.push_back('}');
      return;
    }
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> ParseDocument() {
    WPRED_ASSIGN_OR_RETURN(Json value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Result<Json> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of JSON input");
    }
    switch (text_[pos_]) {
      case '{': {
        if (depth_ >= kMaxDepth) {
          return Status::InvalidArgument("JSON nesting too deep");
        }
        ++depth_;
        Result<Json> obj = ParseObject();
        --depth_;
        return obj;
      }
      case '[': {
        if (depth_ >= kMaxDepth) {
          return Status::InvalidArgument("JSON nesting too deep");
        }
        ++depth_;
        Result<Json> arr = ParseArray();
        --depth_;
        return arr;
      }
      case '"': {
        WPRED_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Json(std::move(s));
      }
      case 't':
        return ParseLiteral("true", Json(true));
      case 'f':
        return ParseLiteral("false", Json(false));
      case 'n':
        return ParseLiteral("null", Json());
      default:
        return ParseNumber();
    }
  }

  Result<Json> ParseObject() {
    ++pos_;  // '{'
    Json obj = Json::Object();
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      SkipWhitespace();
      if (Peek() != '"') return Status::InvalidArgument("expected object key");
      WPRED_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (Peek() != ':') return Status::InvalidArgument("expected ':'");
      ++pos_;
      WPRED_ASSIGN_OR_RETURN(Json value, ParseValue());
      obj.Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return obj;
      }
      return Status::InvalidArgument("expected ',' or '}' in object");
    }
  }

  Result<Json> ParseArray() {
    ++pos_;  // '['
    Json arr = Json::Array();
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      WPRED_ASSIGN_OR_RETURN(Json value, ParseValue());
      arr.Append(std::move(value));
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return arr;
      }
      return Status::InvalidArgument("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status::InvalidArgument("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Status::InvalidArgument("bad \\u escape digit");
            }
          }
          // The exporter only writes \u00xx control escapes; reject the rest
          // instead of mis-encoding.
          if (code > 0x7f) {
            return Status::InvalidArgument("non-ASCII \\u escape unsupported");
          }
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          return Status::InvalidArgument("unknown escape in string");
      }
    }
    return Status::InvalidArgument("unterminated string");
  }

  Result<Json> ParseNumber() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Status::InvalidArgument("expected JSON value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Status::InvalidArgument("malformed number: " + token);
    }
    // strtod saturates overflow to +/-inf; JSON has no way to write that
    // back, so reject rather than let inf leak into numeric pipelines.
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("number out of range: " + token);
    }
    return Json(v);
  }

  Result<Json> ParseLiteral(std::string_view literal, Json value) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Status::InvalidArgument("bad JSON literal");
    }
    pos_ += literal.size();
    return value;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  // Bounds recursive descent so hostile inputs ("[[[[...") fail with a
  // Status instead of exhausting the stack (found by fuzz/json_fuzz).
  static constexpr int kMaxDepth = 192;

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

const Json& Json::Get(std::string_view key) const {
  for (const auto& [name, value] : fields_) {
    if (name == key) return value;
  }
  return NullJson();
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(*this, indent, 0, out);
  return out;
}

Result<Json> Json::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace wpred::obs
