#ifndef WPRED_ML_GRADIENT_BOOSTING_H_
#define WPRED_ML_GRADIENT_BOOSTING_H_

#include <vector>

#include "ml/decision_tree.h"
#include "ml/model.h"

namespace wpred {

/// Gradient-boosting hyper-parameters.
struct GbParams {
  int num_stages = 100;
  double learning_rate = 0.1;
  int max_depth = 3;
  size_t min_samples_leaf = 1;
  /// Row subsampling per stage (stochastic gradient boosting); 1.0 = all.
  double subsample = 1.0;
  uint64_t seed = 23;
};

/// Least-squares gradient-boosted regression trees (Friedman 2001): each
/// stage fits a shallow CART tree to the current residuals and is added with
/// shrinkage `learning_rate`.
class GradientBoostingRegressor : public Regressor {
 public:
  explicit GradientBoostingRegressor(GbParams params = {}) : params_(params) {}

  Status Fit(const Matrix& x, const Vector& y) override;
  Result<double> Predict(const Vector& row) const override;
  bool fitted() const override { return fitted_; }
  Result<Vector> FeatureImportances() const override;

 private:
  GbParams params_;
  double base_prediction_ = 0.0;
  std::vector<internal::FittedTree> stages_;
  size_t num_features_ = 0;
  bool fitted_ = false;
};

}  // namespace wpred

#endif  // WPRED_ML_GRADIENT_BOOSTING_H_
