#ifndef WPRED_ML_METRICS_H_
#define WPRED_ML_METRICS_H_

#include <vector>

#include "linalg/matrix.h"

namespace wpred {

/// Root mean squared error.
double Rmse(const Vector& y_true, const Vector& y_pred);

/// NRMSE per the paper (Section 6.2): RMSE normalised by the range of the
/// observed values ("deviation from the actual observed throughput value
/// ranges"). Falls back to normalising by |mean| when the range is zero
/// (constant non-zero truth). When the truth is degenerate in both senses —
/// every y_true is zero — there is no scale to normalise by, so the result
/// is NaN rather than a raw-RMSE value masquerading as a normalised one.
double Nrmse(const Vector& y_true, const Vector& y_pred);

/// Mape() plus the bookkeeping that keeps a skip-based metric honest: how
/// many entries were actually compared and how many were skipped because
/// y_true was zero (percentage error is undefined there).
struct MapeResult {
  /// Mean |y_true - y_pred| / |y_true| over used entries; NaN when none.
  double mape = 0.0;
  size_t used = 0;
  size_t skipped = 0;
};
MapeResult MapeDetail(const Vector& y_true, const Vector& y_pred);

/// Mean absolute percentage error (fractional, e.g. 0.206 for 20.6%).
/// Entries with y_true == 0 are skipped; if that skips *every* entry the
/// result is NaN — never 0.0, which would report a perfect score for
/// predictions that were not evaluated at all (e.g. under PR 1 dropout
/// faults). Use MapeDetail() to surface the skip count.
double Mape(const Vector& y_true, const Vector& y_pred);

/// Coefficient of determination; 1 for a perfect fit, <= 0 for fits no
/// better than the mean.
double R2(const Vector& y_true, const Vector& y_pred);

/// Fraction of matching labels.
double Accuracy(const std::vector<int>& y_true, const std::vector<int>& y_pred);

/// Mean absolute error.
double MeanAbsoluteError(const Vector& y_true, const Vector& y_pred);

}  // namespace wpred

#endif  // WPRED_ML_METRICS_H_
