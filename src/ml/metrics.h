#ifndef WPRED_ML_METRICS_H_
#define WPRED_ML_METRICS_H_

#include <vector>

#include "linalg/matrix.h"

namespace wpred {

/// Root mean squared error.
double Rmse(const Vector& y_true, const Vector& y_pred);

/// NRMSE per the paper (Section 6.2): RMSE normalised by the range of the
/// observed values ("deviation from the actual observed throughput value
/// ranges"). Falls back to normalising by |mean| when the range is zero.
double Nrmse(const Vector& y_true, const Vector& y_pred);

/// Mean absolute percentage error (fractional, e.g. 0.206 for 20.6%).
/// Entries with y_true == 0 are skipped.
double Mape(const Vector& y_true, const Vector& y_pred);

/// Coefficient of determination; 1 for a perfect fit, <= 0 for fits no
/// better than the mean.
double R2(const Vector& y_true, const Vector& y_pred);

/// Fraction of matching labels.
double Accuracy(const std::vector<int>& y_true, const std::vector<int>& y_pred);

/// Mean absolute error.
double MeanAbsoluteError(const Vector& y_true, const Vector& y_pred);

}  // namespace wpred

#endif  // WPRED_ML_METRICS_H_
