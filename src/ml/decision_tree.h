#ifndef WPRED_ML_DECISION_TREE_H_
#define WPRED_ML_DECISION_TREE_H_

#include <vector>

#include "common/rng.h"
#include "ml/model.h"

namespace wpred {

/// Hyper-parameters shared by the CART learners.
struct TreeParams {
  int max_depth = 12;
  size_t min_samples_leaf = 1;
  size_t min_samples_split = 2;
  /// Features examined per split; 0 means all (random forests subsample).
  size_t max_features = 0;
  /// Seed for feature subsampling (only used when max_features > 0).
  uint64_t seed = 0;
};

namespace internal {

/// Flat binary tree shared by the regression and classification learners.
struct TreeNode {
  int feature = -1;      // -1 for leaves
  double threshold = 0.0;
  int left = -1;
  int right = -1;
  double value = 0.0;    // mean target (regression) or majority class id
};

struct FittedTree {
  std::vector<TreeNode> nodes;
  Vector importances;  // impurity-decrease per feature, normalised to sum 1
  size_t num_features = 0;

  double Evaluate(const Vector& row) const;
};

/// Builds a CART tree. `classification` selects Gini impurity over variance;
/// labels must then be integral values in [0, num_classes).
FittedTree BuildTree(const Matrix& x, const Vector& y, bool classification,
                     int num_classes, const TreeParams& params,
                     const std::vector<size_t>& row_indices);

}  // namespace internal

/// CART regression tree (variance-reduction splits).
class DecisionTreeRegressor : public Regressor {
 public:
  explicit DecisionTreeRegressor(TreeParams params = {}) : params_(params) {}

  Status Fit(const Matrix& x, const Vector& y) override;
  Result<double> Predict(const Vector& row) const override;
  bool fitted() const override { return !tree_.nodes.empty(); }
  Result<Vector> FeatureImportances() const override;

 private:
  TreeParams params_;
  internal::FittedTree tree_;
};

/// CART classification tree (Gini splits, majority-vote leaves).
class DecisionTreeClassifier : public Classifier {
 public:
  explicit DecisionTreeClassifier(TreeParams params = {}) : params_(params) {}

  Status Fit(const Matrix& x, const std::vector<int>& y) override;
  Result<int> Predict(const Vector& row) const override;
  bool fitted() const override { return !tree_.nodes.empty(); }
  Result<Vector> FeatureImportances() const override;

  int num_classes() const { return num_classes_; }

 private:
  TreeParams params_;
  internal::FittedTree tree_;
  int num_classes_ = 0;
};

}  // namespace wpred

#endif  // WPRED_ML_DECISION_TREE_H_
