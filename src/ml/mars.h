#ifndef WPRED_ML_MARS_H_
#define WPRED_ML_MARS_H_

#include <vector>

#include "ml/model.h"

namespace wpred {

/// MARS hyper-parameters.
struct MarsParams {
  /// Maximum basis terms after the intercept (hinge pairs count as two).
  size_t max_terms = 14;
  /// Candidate knots per feature (taken at data quantiles).
  size_t knots_per_feature = 16;
  /// GCV complexity penalty per knot (Friedman recommends 2-3).
  double gcv_penalty = 3.0;
};

/// Multivariate Adaptive Regression Splines (Friedman 1991), additive
/// first-order form: a greedy forward pass adds the hinge pair
/// {max(0, x_j − t), max(0, t − x_j)} that most reduces SSE, then a backward
/// pass prunes terms by generalised cross-validation. Yields the piecewise
/// linear fits the paper uses as a non-linear scaling strategy (Section
/// 6.1.2).
class MarsRegressor : public Regressor {
 public:
  explicit MarsRegressor(MarsParams params = {}) : params_(params) {}

  Status Fit(const Matrix& x, const Vector& y) override;
  Result<double> Predict(const Vector& row) const override;
  bool fitted() const override { return fitted_; }

  /// Number of retained basis terms (excluding the intercept).
  size_t NumTerms() const { return terms_.size(); }

 private:
  struct Hinge {
    size_t feature;
    double knot;
    bool positive;  // max(0, x - t) vs max(0, t - x)
  };

  double EvaluateTerm(const Hinge& term, const Vector& row) const;

  MarsParams params_;
  std::vector<Hinge> terms_;
  Vector coef_;          // one per term
  double intercept_ = 0.0;
  size_t num_features_ = 0;
  bool fitted_ = false;
};

}  // namespace wpred

#endif  // WPRED_ML_MARS_H_
