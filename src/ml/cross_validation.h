#ifndef WPRED_ML_CROSS_VALIDATION_H_
#define WPRED_ML_CROSS_VALIDATION_H_

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "ml/model.h"

namespace wpred {

/// One train/test index split.
struct FoldSplit {
  std::vector<size_t> train;
  std::vector<size_t> test;
};

/// Shuffled k-fold splits of [0, n). Every index appears in exactly one test
/// fold; fold sizes differ by at most one. Requires 2 <= k <= n.
Result<std::vector<FoldSplit>> KFoldSplits(size_t n, int k, Rng& rng);

/// Regression metric over (y_true, y_pred).
using RegressionMetric = std::function<double(const Vector&, const Vector&)>;

/// Per-fold score plus mean training wall time.
struct CrossValResult {
  Vector fold_scores;
  double mean_score = 0.0;
  double mean_fit_seconds = 0.0;
};

/// k-fold cross-validation of a regression model built per fold by
/// `factory`. The paper evaluates every scaling strategy this way (5-fold,
/// NRMSE; Table 6).
///
/// Folds are evaluated on the shared pool (common/parallel.h): the split
/// consumes `rng` before any parallel work, each fold fits its own model
/// into its own slot, and scores reduce in fold order, so results are
/// bit-identical at any thread count. `factory` and `metric` must be safe to
/// invoke concurrently (stateless lambdas are). `num_threads < 1` means the
/// process default (WPRED_THREADS); 1 forces the serial path.
Result<CrossValResult> CrossValidateRegressor(
    const std::function<std::unique_ptr<Regressor>()>& factory,
    const Matrix& x, const Vector& y, int k, const RegressionMetric& metric,
    Rng& rng, int num_threads = 0);

}  // namespace wpred

#endif  // WPRED_ML_CROSS_VALIDATION_H_
