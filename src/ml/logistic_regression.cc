#include "ml/logistic_regression.h"

#include <algorithm>
#include <cmath>

namespace wpred {

Status LogisticRegression::Fit(const Matrix& x, const std::vector<int>& y) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("empty design matrix");
  }
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("row count mismatch between x and y");
  }
  fitted_ = false;

  int max_label = 0;
  for (int label : y) {
    if (label < 0) return Status::InvalidArgument("labels must be >= 0");
    max_label = std::max(max_label, label);
  }
  num_classes_ = max_label + 1;
  if (num_classes_ < 2) {
    return Status::InvalidArgument("need at least two classes");
  }

  const Matrix xs = scaler_.FitTransform(x);
  const size_t n = xs.rows();
  const size_t p = xs.cols();
  const size_t k = static_cast<size_t>(num_classes_);

  weights_ = Matrix(k, p);
  bias_.assign(k, 0.0);
  Matrix vel_w(k, p);
  Vector vel_b(k, 0.0);
  const double momentum = 0.9;

  std::vector<double> probs(k);
  Matrix grad_w(k, p);
  Vector grad_b(k);
  for (int iter = 0; iter < max_iter_; ++iter) {
    grad_w = Matrix(k, p);
    grad_b.assign(k, 0.0);
    for (size_t r = 0; r < n; ++r) {
      // Softmax over class scores.
      double max_score = -1e300;
      for (size_t c = 0; c < k; ++c) {
        double score = bias_[c];
        for (size_t j = 0; j < p; ++j) score += weights_(c, j) * xs(r, j);
        probs[c] = score;
        max_score = std::max(max_score, score);
      }
      double z = 0.0;
      for (size_t c = 0; c < k; ++c) {
        probs[c] = std::exp(probs[c] - max_score);
        z += probs[c];
      }
      for (size_t c = 0; c < k; ++c) {
        const double err =
            probs[c] / z - (static_cast<int>(c) == y[r] ? 1.0 : 0.0);
        grad_b[c] += err;
        for (size_t j = 0; j < p; ++j) grad_w(c, j) += err * xs(r, j);
      }
    }
    const double inv_n = 1.0 / static_cast<double>(n);
    for (size_t c = 0; c < k; ++c) {
      for (size_t j = 0; j < p; ++j) {
        const double g = grad_w(c, j) * inv_n + l2_ * weights_(c, j);
        vel_w(c, j) = momentum * vel_w(c, j) - learning_rate_ * g;
        weights_(c, j) += vel_w(c, j);
      }
      vel_b[c] = momentum * vel_b[c] - learning_rate_ * grad_b[c] * inv_n;
      bias_[c] += vel_b[c];
    }
  }
  fitted_ = true;
  return Status::OK();
}

Vector LogisticRegression::Scores(const Vector& standardized_row) const {
  Vector scores(static_cast<size_t>(num_classes_));
  for (size_t c = 0; c < scores.size(); ++c) {
    double score = bias_[c];
    for (size_t j = 0; j < standardized_row.size(); ++j) {
      score += weights_(c, j) * standardized_row[j];
    }
    scores[c] = score;
  }
  return scores;
}

Result<Vector> LogisticRegression::PredictProba(const Vector& row) const {
  if (!fitted_) return Status::FailedPrecondition("model not fitted");
  if (row.size() != weights_.cols()) {
    return Status::InvalidArgument("feature arity mismatch");
  }
  Vector scores = Scores(scaler_.TransformRow(row));
  const double max_score = *std::max_element(scores.begin(), scores.end());
  double z = 0.0;
  for (double& s : scores) {
    s = std::exp(s - max_score);
    z += s;
  }
  for (double& s : scores) s /= z;
  return scores;
}

Result<int> LogisticRegression::Predict(const Vector& row) const {
  WPRED_ASSIGN_OR_RETURN(Vector probs, PredictProba(row));
  return static_cast<int>(std::max_element(probs.begin(), probs.end()) -
                          probs.begin());
}

Result<Vector> LogisticRegression::FeatureImportances() const {
  if (!fitted_) return Status::FailedPrecondition("model not fitted");
  Vector importances(weights_.cols(), 0.0);
  for (size_t j = 0; j < weights_.cols(); ++j) {
    for (size_t c = 0; c < weights_.rows(); ++c) {
      importances[j] += std::fabs(weights_(c, j));
    }
    importances[j] /= static_cast<double>(weights_.rows());
  }
  return importances;
}

}  // namespace wpred
