#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "common/rng.h"
#include "obs/metrics.h"

namespace wpred {
namespace {

Status ValidateProblem(const Matrix& x, size_t y_size, int num_trees) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("empty design matrix");
  }
  if (x.rows() != y_size) {
    return Status::InvalidArgument("row count mismatch between x and y");
  }
  if (num_trees < 1) return Status::InvalidArgument("num_trees must be >= 1");
  return Status::OK();
}

std::vector<size_t> BootstrapSample(size_t n, Rng& rng) {
  std::vector<size_t> sample(n);
  for (size_t i = 0; i < n; ++i) {
    sample[i] = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
  }
  return sample;
}

Vector MeanImportances(const std::vector<internal::FittedTree>& trees,
                       size_t num_features) {
  Vector importances(num_features, 0.0);
  for (const auto& tree : trees) {
    for (size_t f = 0; f < num_features; ++f) {
      importances[f] += tree.importances[f];
    }
  }
  for (double& v : importances) v /= static_cast<double>(trees.size());
  return importances;
}

// Fits regression trees [begin, begin + count) into preallocated slots.
// Each tree forks two independent streams off the forest seed: tag 2t for
// the bootstrap row draws, tag 2t+1 for the tree's internal feature
// subsampling. (Sharing one stream for both replays identical draws and
// correlates bagging with split selection.) Tags depend only on the global
// tree index t — never on `begin`, the thread, or sibling trees — so
// parallel fitting into preallocated slots stays bit-identical to serial,
// and growing trees [T, T+A) later reproduces exactly the trees a larger
// from-scratch fit would build.
Status FitRegressionTreeRange(const Matrix& x, const Vector& y,
                              const ForestParams& params, size_t begin,
                              size_t count,
                              std::vector<internal::FittedTree>& trees) {
  TreeParams tree_params;
  tree_params.max_depth = params.max_depth;
  tree_params.min_samples_leaf = params.min_samples_leaf;
  tree_params.max_features = params.max_features > 0
                                 ? params.max_features
                                 : std::max<size_t>(1, x.cols() / 3);

  const Rng rng(params.seed);
  return ParallelFor(count, params.num_threads, [&](size_t i) -> Status {
    const size_t t = begin + i;
    TreeParams tp = tree_params;
    Rng bootstrap_rng = rng.Fork(2 * t);
    tp.seed = rng.Fork(2 * t + 1).seed();
    const std::vector<size_t> sample = BootstrapSample(x.rows(), bootstrap_rng);
    trees[t] =
        internal::BuildTree(x, y, /*classification=*/false, 0, tp, sample);
    WPRED_COUNT_ADD("ml.rf.trees_fit", 1);
    return Status::OK();
  });
}

}  // namespace

Status RandomForestRegressor::Fit(const Matrix& x, const Vector& y) {
  WPRED_RETURN_IF_ERROR(ValidateProblem(x, y.size(), params_.num_trees));
  trees_.clear();
  num_features_ = x.cols();
  trees_.resize(static_cast<size_t>(params_.num_trees));
  WPRED_RETURN_IF_ERROR(FitRegressionTreeRange(
      x, y, params_, 0, static_cast<size_t>(params_.num_trees), trees_));
  WPRED_COUNT_ADD("ml.rf.fits", 1);
  return Status::OK();
}

Status RandomForestRegressor::GrowTrees(const Matrix& x, const Vector& y,
                                        int additional) {
  if (!fitted()) {
    return Status::FailedPrecondition("GrowTrees before a successful Fit");
  }
  WPRED_RETURN_IF_ERROR(ValidateProblem(x, y.size(), additional));
  if (x.cols() != num_features_) {
    return Status::InvalidArgument("feature arity mismatch with fitted forest");
  }
  const size_t old_size = trees_.size();
  trees_.resize(old_size + static_cast<size_t>(additional));
  const Status grown = FitRegressionTreeRange(
      x, y, params_, old_size, static_cast<size_t>(additional), trees_);
  if (!grown.ok()) {
    trees_.resize(old_size);  // keep the fitted forest usable on failure
    return grown;
  }
  WPRED_COUNT_ADD("ml.rf.trees_grown", static_cast<uint64_t>(additional));
  return Status::OK();
}

Result<double> RandomForestRegressor::Predict(const Vector& row) const {
  if (!fitted()) return Status::FailedPrecondition("model not fitted");
  if (row.size() != num_features_) {
    return Status::InvalidArgument("feature arity mismatch");
  }
  double acc = 0.0;
  for (const auto& tree : trees_) acc += tree.Evaluate(row);
  return acc / static_cast<double>(trees_.size());
}

Result<Vector> RandomForestRegressor::FeatureImportances() const {
  if (!fitted()) return Status::FailedPrecondition("model not fitted");
  return MeanImportances(trees_, num_features_);
}

Status RandomForestClassifier::Fit(const Matrix& x, const std::vector<int>& y) {
  WPRED_RETURN_IF_ERROR(ValidateProblem(x, y.size(), params_.num_trees));
  trees_.clear();
  num_features_ = x.cols();

  int max_label = 0;
  for (int label : y) {
    if (label < 0) return Status::InvalidArgument("labels must be >= 0");
    max_label = std::max(max_label, label);
  }
  num_classes_ = max_label + 1;

  TreeParams tree_params;
  tree_params.max_depth = params_.max_depth;
  tree_params.min_samples_leaf = params_.min_samples_leaf;
  tree_params.max_features =
      params_.max_features > 0
          ? params_.max_features
          : std::max<size_t>(1, static_cast<size_t>(std::sqrt(
                                    static_cast<double>(x.cols()))));

  const Vector y_double(y.begin(), y.end());
  // Same two-stream forking discipline as the regressor (see above).
  const Rng rng(params_.seed);
  trees_.resize(static_cast<size_t>(params_.num_trees));
  WPRED_RETURN_IF_ERROR(ParallelFor(
      static_cast<size_t>(params_.num_trees), params_.num_threads,
      [&](size_t t) -> Status {
        TreeParams tp = tree_params;
        Rng bootstrap_rng = rng.Fork(2 * t);
        tp.seed = rng.Fork(2 * t + 1).seed();
        const std::vector<size_t> sample =
            BootstrapSample(x.rows(), bootstrap_rng);
        trees_[t] = internal::BuildTree(x, y_double, /*classification=*/true,
                                        num_classes_, tp, sample);
        WPRED_COUNT_ADD("ml.rf.trees_fit", 1);
        return Status::OK();
      }));
  WPRED_COUNT_ADD("ml.rf.fits", 1);
  return Status::OK();
}

Result<int> RandomForestClassifier::Predict(const Vector& row) const {
  if (!fitted()) return Status::FailedPrecondition("model not fitted");
  if (row.size() != num_features_) {
    return Status::InvalidArgument("feature arity mismatch");
  }
  std::vector<int> votes(static_cast<size_t>(num_classes_), 0);
  for (const auto& tree : trees_) {
    ++votes[static_cast<size_t>(tree.Evaluate(row))];
  }
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) -
                          votes.begin());
}

Result<Vector> RandomForestClassifier::FeatureImportances() const {
  if (!fitted()) return Status::FailedPrecondition("model not fitted");
  return MeanImportances(trees_, num_features_);
}

}  // namespace wpred
