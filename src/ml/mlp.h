#ifndef WPRED_ML_MLP_H_
#define WPRED_ML_MLP_H_

#include <vector>

#include "linalg/stats.h"
#include "ml/model.h"

namespace wpred {

/// Multi-layer perceptron hyper-parameters. The paper's NNet strategy is a
/// 6-hidden-layer scikit-learn MLPRegressor; the default mirrors that
/// (which is exactly why it underfits the tiny scaling datasets of Table 6).
struct MlpParams {
  std::vector<size_t> hidden_layers = {64, 64, 64, 64, 64, 64};
  int epochs = 300;
  size_t batch_size = 32;
  double learning_rate = 1e-3;  // Adam step size
  double l2 = 1e-4;
  /// When false, inputs/targets are used raw (scikit-learn's MLPRegressor
  /// behaviour) — with cloud-scale targets the optimizer cannot bridge the
  /// output magnitude in the iteration budget, reproducing the paper's
  /// catastrophic NNet rows (Table 6).
  bool standardize = true;
  uint64_t seed = 41;
};

/// Feed-forward ReLU network regressor trained with Adam on mini-batches of
/// standardised inputs/targets.
class MlpRegressor : public Regressor {
 public:
  explicit MlpRegressor(MlpParams params = {}) : params_(std::move(params)) {}

  Status Fit(const Matrix& x, const Vector& y) override;
  Result<double> Predict(const Vector& row) const override;
  bool fitted() const override { return fitted_; }

 private:
  Vector Forward(const Vector& input) const;

  MlpParams params_;
  StandardScaler x_scaler_;
  TargetScaler y_scaler_;
  // Layer l maps activations of size dims_[l] to dims_[l+1].
  std::vector<size_t> dims_;
  std::vector<Matrix> weights_;
  std::vector<Vector> biases_;
  bool fitted_ = false;
};

}  // namespace wpred

#endif  // WPRED_ML_MLP_H_
