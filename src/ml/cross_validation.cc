#include "ml/cross_validation.h"

#include <chrono>

#include "common/parallel.h"
#include "linalg/stats.h"
#include "obs/metrics.h"

namespace wpred {

Result<std::vector<FoldSplit>> KFoldSplits(size_t n, int k, Rng& rng) {
  if (k < 2) return Status::InvalidArgument("k must be >= 2");
  if (static_cast<size_t>(k) > n) {
    return Status::InvalidArgument("k exceeds the number of observations");
  }
  const std::vector<size_t> perm = rng.Permutation(n);
  std::vector<FoldSplit> folds(static_cast<size_t>(k));
  for (size_t i = 0; i < n; ++i) {
    folds[i % static_cast<size_t>(k)].test.push_back(perm[i]);
  }
  for (int f = 0; f < k; ++f) {
    for (int other = 0; other < k; ++other) {
      if (other == f) continue;
      folds[f].train.insert(folds[f].train.end(), folds[other].test.begin(),
                            folds[other].test.end());
    }
  }
  return folds;
}

namespace {

// Per-fold outputs land in their own slot; reduction happens after the join
// in fold order so the result is independent of scheduling.
struct FoldOutcome {
  double score = 0.0;
  double fit_seconds = 0.0;
};

}  // namespace

Result<CrossValResult> CrossValidateRegressor(
    const std::function<std::unique_ptr<Regressor>()>& factory,
    const Matrix& x, const Vector& y, int k, const RegressionMetric& metric,
    Rng& rng, int num_threads) {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("row count mismatch between x and y");
  }
  WPRED_ASSIGN_OR_RETURN(std::vector<FoldSplit> folds,
                         KFoldSplits(x.rows(), k, rng));
  WPRED_ASSIGN_OR_RETURN(
      std::vector<FoldOutcome> outcomes,
      ParallelMap<FoldOutcome>(
          folds.size(), num_threads,
          [&](size_t f) -> Result<FoldOutcome> {
            const FoldSplit& fold = folds[f];
            const Matrix x_train = x.SelectRows(fold.train);
            const Matrix x_test = x.SelectRows(fold.test);
            Vector y_train(fold.train.size()), y_test(fold.test.size());
            for (size_t i = 0; i < fold.train.size(); ++i) {
              y_train[i] = y[fold.train[i]];
            }
            for (size_t i = 0; i < fold.test.size(); ++i) {
              y_test[i] = y[fold.test[i]];
            }

            std::unique_ptr<Regressor> model = factory();
            const auto t0 = std::chrono::steady_clock::now();
            WPRED_RETURN_IF_ERROR(model->Fit(x_train, y_train));
            FoldOutcome outcome;
            outcome.fit_seconds =
                std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              t0)
                    .count();
            WPRED_ASSIGN_OR_RETURN(Vector y_pred, model->PredictBatch(x_test));
            outcome.score = metric(y_test, y_pred);
            // Recorded from whichever pool worker ran the fold — the
            // registry aggregates across threads.
            WPRED_COUNT_ADD("ml.cv.folds", 1);
            WPRED_HIST_RECORD("ml.cv.fold_fit_seconds", outcome.fit_seconds);
            return outcome;
          }));
  CrossValResult result;
  double fit_seconds = 0.0;
  for (const FoldOutcome& outcome : outcomes) {
    result.fold_scores.push_back(outcome.score);
    fit_seconds += outcome.fit_seconds;
  }
  result.mean_score = Mean(result.fold_scores);
  result.mean_fit_seconds = fit_seconds / static_cast<double>(folds.size());
  return result;
}

}  // namespace wpred
