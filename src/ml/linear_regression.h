#ifndef WPRED_ML_LINEAR_REGRESSION_H_
#define WPRED_ML_LINEAR_REGRESSION_H_

#include "ml/model.h"

namespace wpred {

/// Ordinary least squares (optionally ridge-regularised) linear regression
/// with an intercept. Feature importances are |coefficients| — meaningful
/// when inputs are standardised (RFE/SFS standardise before fitting).
class LinearRegression : public Regressor {
 public:
  explicit LinearRegression(double ridge = 0.0) : ridge_(ridge) {}

  Status Fit(const Matrix& x, const Vector& y) override;
  Result<double> Predict(const Vector& row) const override;
  bool fitted() const override { return fitted_; }
  Result<Vector> FeatureImportances() const override;

  const Vector& coefficients() const { return coef_; }
  double intercept() const { return intercept_; }

 private:
  double ridge_;
  Vector coef_;
  double intercept_ = 0.0;
  bool fitted_ = false;
};

/// Expands a feature matrix with polynomial powers of each column
/// (degree >= 1; no cross terms): [x, x², ..., x^degree].
Matrix PolynomialExpand(const Matrix& x, int degree);

/// Linear regression on a polynomial expansion of the inputs.
class PolynomialRegression : public Regressor {
 public:
  explicit PolynomialRegression(int degree = 2, double ridge = 0.0)
      : degree_(degree), linear_(ridge) {}

  Status Fit(const Matrix& x, const Vector& y) override;
  Result<double> Predict(const Vector& row) const override;
  bool fitted() const override { return linear_.fitted(); }

 private:
  int degree_;
  LinearRegression linear_;
};

}  // namespace wpred

#endif  // WPRED_ML_LINEAR_REGRESSION_H_
