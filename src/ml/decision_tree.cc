#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace wpred {
namespace internal {
namespace {

// Split candidate evaluation result.
struct BestSplit {
  int feature = -1;
  double threshold = 0.0;
  double gain = 0.0;  // impurity decrease, weighted by node share
};

class TreeBuilder {
 public:
  TreeBuilder(const Matrix& x, const Vector& y, bool classification,
              int num_classes, const TreeParams& params)
      : x_(x),
        y_(y),
        classification_(classification),
        num_classes_(num_classes),
        params_(params),
        rng_(params.seed) {}

  FittedTree Build(const std::vector<size_t>& row_indices) {
    WPRED_DCHECK_EQ(x_.rows(), y_.size()) << "design/target row mismatch";
    FittedTree tree;
    tree.num_features = x_.cols();
    tree.importances.assign(x_.cols(), 0.0);
    tree_ = &tree;
    total_samples_ = static_cast<double>(row_indices.size());
    std::vector<size_t> indices = row_indices;
    BuildNode(indices, 0);
    double total = 0.0;
    for (double v : tree.importances) total += v;
    if (total > 0.0) {
      for (double& v : tree.importances) v /= total;
    }
    return tree;
  }

 private:
  double LeafValue(const std::vector<size_t>& indices) const {
    if (classification_) {
      std::vector<size_t> counts(num_classes_, 0);
      for (size_t i : indices) {
        WPRED_DCHECK_LT(y_[i], num_classes_) << "label out of range";
        WPRED_DCHECK_GE(y_[i], 0.0);
        ++counts[static_cast<size_t>(y_[i])];
      }
      return static_cast<double>(std::max_element(counts.begin(), counts.end()) -
                                 counts.begin());
    }
    double mean = 0.0;
    for (size_t i : indices) mean += y_[i];
    return indices.empty() ? 0.0 : mean / static_cast<double>(indices.size());
  }

  // Node impurity: Gini for classification, variance for regression.
  double Impurity(const std::vector<size_t>& indices) const {
    const double n = static_cast<double>(indices.size());
    if (indices.empty()) return 0.0;
    if (classification_) {
      std::vector<double> counts(num_classes_, 0.0);
      for (size_t i : indices) counts[static_cast<size_t>(y_[i])] += 1.0;
      double gini = 1.0;
      for (double c : counts) gini -= (c / n) * (c / n);
      return gini;
    }
    double mean = 0.0;
    for (size_t i : indices) mean += y_[i];
    mean /= n;
    double var = 0.0;
    for (size_t i : indices) var += (y_[i] - mean) * (y_[i] - mean);
    return var / n;
  }

  BestSplit FindBestSplit(const std::vector<size_t>& indices) {
    BestSplit best;
    const double parent_impurity = Impurity(indices);
    if (parent_impurity <= 1e-15) return best;
    const double n = static_cast<double>(indices.size());

    std::vector<size_t> features(x_.cols());
    std::iota(features.begin(), features.end(), 0);
    if (params_.max_features > 0 && params_.max_features < x_.cols()) {
      // Random subspace: shuffle then truncate.
      for (size_t i = features.size(); i > 1; --i) {
        const size_t j = static_cast<size_t>(
            rng_.UniformInt(0, static_cast<int64_t>(i) - 1));
        std::swap(features[i - 1], features[j]);
      }
      features.resize(params_.max_features);
    }

    std::vector<std::pair<double, double>> ordered(indices.size());
    for (size_t feature : features) {
      for (size_t k = 0; k < indices.size(); ++k) {
        ordered[k] = {x_(indices[k], feature), y_[indices[k]]};
      }
      std::sort(ordered.begin(), ordered.end());
      if (ordered.front().first == ordered.back().first) continue;

      if (classification_) {
        std::vector<double> left_counts(num_classes_, 0.0);
        std::vector<double> right_counts(num_classes_, 0.0);
        for (const auto& [xv, yv] : ordered) {
          right_counts[static_cast<size_t>(yv)] += 1.0;
        }
        for (size_t k = 0; k + 1 < ordered.size(); ++k) {
          const size_t cls = static_cast<size_t>(ordered[k].second);
          left_counts[cls] += 1.0;
          right_counts[cls] -= 1.0;
          if (ordered[k].first == ordered[k + 1].first) continue;
          const double nl = static_cast<double>(k + 1);
          const double nr = n - nl;
          if (nl < params_.min_samples_leaf || nr < params_.min_samples_leaf) {
            continue;
          }
          double gini_l = 1.0, gini_r = 1.0;
          for (int c = 0; c < num_classes_; ++c) {
            gini_l -= (left_counts[c] / nl) * (left_counts[c] / nl);
            gini_r -= (right_counts[c] / nr) * (right_counts[c] / nr);
          }
          const double child = (nl * gini_l + nr * gini_r) / n;
          const double gain = parent_impurity - child;
          if (gain > best.gain) {
            best = {static_cast<int>(feature),
                    0.5 * (ordered[k].first + ordered[k + 1].first), gain};
          }
        }
      } else {
        double right_sum = 0.0, right_sq = 0.0;
        for (const auto& [xv, yv] : ordered) {
          right_sum += yv;
          right_sq += yv * yv;
        }
        double left_sum = 0.0, left_sq = 0.0;
        for (size_t k = 0; k + 1 < ordered.size(); ++k) {
          const double yv = ordered[k].second;
          left_sum += yv;
          left_sq += yv * yv;
          right_sum -= yv;
          right_sq -= yv * yv;
          if (ordered[k].first == ordered[k + 1].first) continue;
          const double nl = static_cast<double>(k + 1);
          const double nr = n - nl;
          if (nl < params_.min_samples_leaf || nr < params_.min_samples_leaf) {
            continue;
          }
          const double var_l = left_sq / nl - (left_sum / nl) * (left_sum / nl);
          const double var_r =
              right_sq / nr - (right_sum / nr) * (right_sum / nr);
          const double child = (nl * var_l + nr * var_r) / n;
          const double gain = parent_impurity - child;
          if (gain > best.gain) {
            best = {static_cast<int>(feature),
                    0.5 * (ordered[k].first + ordered[k + 1].first), gain};
          }
        }
      }
    }
    return best;
  }

  int BuildNode(std::vector<size_t>& indices, int depth) {
    const int node_id = static_cast<int>(tree_->nodes.size());
    tree_->nodes.emplace_back();
    tree_->nodes[node_id].value = LeafValue(indices);

    if (depth >= params_.max_depth ||
        indices.size() < params_.min_samples_split) {
      return node_id;
    }
    const BestSplit split = FindBestSplit(indices);
    if (split.feature < 0 || split.gain <= 0.0) return node_id;

    std::vector<size_t> left, right;
    left.reserve(indices.size());
    right.reserve(indices.size());
    for (size_t i : indices) {
      (x_(i, static_cast<size_t>(split.feature)) <= split.threshold ? left
                                                                    : right)
          .push_back(i);
    }
    if (left.empty() || right.empty()) return node_id;

    tree_->importances[static_cast<size_t>(split.feature)] +=
        split.gain * static_cast<double>(indices.size()) / total_samples_;

    indices.clear();
    indices.shrink_to_fit();
    const int left_id = BuildNode(left, depth + 1);
    const int right_id = BuildNode(right, depth + 1);
    tree_->nodes[node_id].feature = split.feature;
    tree_->nodes[node_id].threshold = split.threshold;
    tree_->nodes[node_id].left = left_id;
    tree_->nodes[node_id].right = right_id;
    return node_id;
  }

  const Matrix& x_;
  const Vector& y_;
  bool classification_;
  int num_classes_;
  TreeParams params_;
  Rng rng_;
  FittedTree* tree_ = nullptr;
  double total_samples_ = 0.0;
};

}  // namespace

double FittedTree::Evaluate(const Vector& row) const {
  WPRED_CHECK(!nodes.empty());
  WPRED_DCHECK_EQ(row.size(), num_features) << "feature arity mismatch";
  int node = 0;
  while (nodes[node].feature >= 0) {
    const TreeNode& n = nodes[node];
    WPRED_DCHECK_LT(static_cast<size_t>(n.feature), row.size());
    node = row[static_cast<size_t>(n.feature)] <= n.threshold ? n.left
                                                              : n.right;
    WPRED_DCHECK_GE(node, 0);
    WPRED_DCHECK_LT(static_cast<size_t>(node), nodes.size());
  }
  return nodes[node].value;
}

FittedTree BuildTree(const Matrix& x, const Vector& y, bool classification,
                     int num_classes, const TreeParams& params,
                     const std::vector<size_t>& row_indices) {
  TreeBuilder builder(x, y, classification, num_classes, params);
  return builder.Build(row_indices);
}

}  // namespace internal

namespace {

std::vector<size_t> AllRows(size_t n) {
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  return idx;
}

Status ValidateProblem(const Matrix& x, size_t y_size) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("empty design matrix");
  }
  if (x.rows() != y_size) {
    return Status::InvalidArgument("row count mismatch between x and y");
  }
  return Status::OK();
}

}  // namespace

Status DecisionTreeRegressor::Fit(const Matrix& x, const Vector& y) {
  WPRED_RETURN_IF_ERROR(ValidateProblem(x, y.size()));
  tree_ = internal::BuildTree(x, y, /*classification=*/false, 0, params_,
                              AllRows(x.rows()));
  return Status::OK();
}

Result<double> DecisionTreeRegressor::Predict(const Vector& row) const {
  if (!fitted()) return Status::FailedPrecondition("model not fitted");
  if (row.size() != tree_.num_features) {
    return Status::InvalidArgument("feature arity mismatch");
  }
  return tree_.Evaluate(row);
}

Result<Vector> DecisionTreeRegressor::FeatureImportances() const {
  if (!fitted()) return Status::FailedPrecondition("model not fitted");
  return tree_.importances;
}

Status DecisionTreeClassifier::Fit(const Matrix& x, const std::vector<int>& y) {
  WPRED_RETURN_IF_ERROR(ValidateProblem(x, y.size()));
  int max_label = 0;
  for (int label : y) {
    if (label < 0) return Status::InvalidArgument("labels must be >= 0");
    max_label = std::max(max_label, label);
  }
  num_classes_ = max_label + 1;
  Vector y_double(y.begin(), y.end());
  tree_ = internal::BuildTree(x, y_double, /*classification=*/true,
                              num_classes_, params_, AllRows(x.rows()));
  return Status::OK();
}

Result<int> DecisionTreeClassifier::Predict(const Vector& row) const {
  if (!fitted()) return Status::FailedPrecondition("model not fitted");
  if (row.size() != tree_.num_features) {
    return Status::InvalidArgument("feature arity mismatch");
  }
  return static_cast<int>(tree_.Evaluate(row));
}

Result<Vector> DecisionTreeClassifier::FeatureImportances() const {
  if (!fitted()) return Status::FailedPrecondition("model not fitted");
  return tree_.importances;
}

}  // namespace wpred
