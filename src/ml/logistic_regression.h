#ifndef WPRED_ML_LOGISTIC_REGRESSION_H_
#define WPRED_ML_LOGISTIC_REGRESSION_H_

#include <vector>

#include "linalg/stats.h"
#include "ml/model.h"

namespace wpred {

/// Multinomial (softmax) logistic regression trained with full-batch
/// gradient descent plus momentum on internally standardised inputs, with L2
/// regularisation. Binary problems use the same machinery with two classes.
class LogisticRegression : public Classifier {
 public:
  explicit LogisticRegression(double l2 = 1e-3, int max_iter = 300,
                              double learning_rate = 0.5)
      : l2_(l2), max_iter_(max_iter), learning_rate_(learning_rate) {}

  Status Fit(const Matrix& x, const std::vector<int>& y) override;
  Result<int> Predict(const Vector& row) const override;
  bool fitted() const override { return fitted_; }

  /// Per-feature importance: mean |weight| across classes (weights live in
  /// the standardised space, so magnitudes are comparable).
  Result<Vector> FeatureImportances() const override;

  /// Class probabilities for one observation.
  Result<Vector> PredictProba(const Vector& row) const;

  int num_classes() const { return num_classes_; }

 private:
  Vector Scores(const Vector& standardized_row) const;

  double l2_;
  int max_iter_;
  double learning_rate_;

  StandardScaler scaler_;
  Matrix weights_;  // num_classes x num_features
  Vector bias_;     // num_classes
  int num_classes_ = 0;
  bool fitted_ = false;
};

}  // namespace wpred

#endif  // WPRED_ML_LOGISTIC_REGRESSION_H_
