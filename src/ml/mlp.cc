#include "ml/mlp.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "obs/metrics.h"

namespace wpred {
namespace {

// Adam state per parameter tensor.
struct AdamState {
  std::vector<double> m;
  std::vector<double> v;
};

void AdamStep(std::vector<double>& params, const std::vector<double>& grad,
              AdamState& state, double lr, int t) {
  constexpr double kBeta1 = 0.9;
  constexpr double kBeta2 = 0.999;
  constexpr double kEps = 1e-8;
  if (state.m.empty()) {
    state.m.assign(params.size(), 0.0);
    state.v.assign(params.size(), 0.0);
  }
  const double bc1 = 1.0 - std::pow(kBeta1, t);
  const double bc2 = 1.0 - std::pow(kBeta2, t);
  for (size_t i = 0; i < params.size(); ++i) {
    state.m[i] = kBeta1 * state.m[i] + (1.0 - kBeta1) * grad[i];
    state.v[i] = kBeta2 * state.v[i] + (1.0 - kBeta2) * grad[i] * grad[i];
    params[i] -= lr * (state.m[i] / bc1) / (std::sqrt(state.v[i] / bc2) + kEps);
  }
}

}  // namespace

Status MlpRegressor::Fit(const Matrix& x, const Vector& y) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("empty design matrix");
  }
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("row count mismatch between x and y");
  }
  if (params_.epochs < 1 || params_.batch_size < 1) {
    return Status::InvalidArgument("bad epochs/batch_size");
  }
  WPRED_DCHECK(AllFinite(x)) << "non-finite design matrix in MlpRegressor::Fit";
  WPRED_DCHECK(AllFinite(y)) << "non-finite target in MlpRegressor::Fit";
  fitted_ = false;

  Matrix xs;
  Vector ys;
  if (params_.standardize) {
    xs = x_scaler_.FitTransform(x);
    y_scaler_.Fit(y);
    ys = y_scaler_.Transform(y);
  } else {
    xs = x;
    ys = y;
  }

  dims_.clear();
  dims_.push_back(x.cols());
  for (size_t h : params_.hidden_layers) {
    if (h == 0) return Status::InvalidArgument("hidden layer of width 0");
    dims_.push_back(h);
  }
  dims_.push_back(1);

  // Phrased additively (not dims_.size() - 1) so the optimiser can prove the
  // per-layer vector sizes below never underflow.
  const size_t num_layers = params_.hidden_layers.size() + 1;
  WPRED_DCHECK_EQ(dims_.size(), num_layers + 1);
  Rng rng(params_.seed);
  weights_.assign(num_layers, Matrix());
  biases_.assign(num_layers, Vector());
  for (size_t l = 0; l < num_layers; ++l) {
    weights_[l] = Matrix(dims_[l + 1], dims_[l]);
    // He initialisation for ReLU layers.
    const double scale = std::sqrt(2.0 / static_cast<double>(dims_[l]));
    for (double& w : weights_[l].data()) w = rng.Gaussian(0.0, scale);
    biases_[l].assign(dims_[l + 1], 0.0);
  }

  std::vector<AdamState> w_state(num_layers);
  std::vector<AdamState> b_state(num_layers);

  const size_t n = xs.rows();
  const size_t batch = std::min(params_.batch_size, n);
  int adam_t = 0;

  // Per-layer activations and deltas, reused across samples.
  std::vector<Vector> acts(num_layers + 1);
  std::vector<Vector> deltas(num_layers);

  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    const std::vector<size_t> order = rng.Permutation(n);
    for (size_t start = 0; start < n; start += batch) {
      const size_t end = std::min(start + batch, n);
      const double inv_b = 1.0 / static_cast<double>(end - start);

      std::vector<std::vector<double>> grad_w(num_layers);
      std::vector<std::vector<double>> grad_b(num_layers);
      for (size_t l = 0; l < num_layers; ++l) {
        grad_w[l].assign(weights_[l].size(), 0.0);
        grad_b[l].assign(biases_[l].size(), 0.0);
      }

      for (size_t k = start; k < end; ++k) {
        const size_t i = order[k];
        // Forward pass with stored activations.
        acts[0] = xs.Row(i);
        for (size_t l = 0; l < num_layers; ++l) {
          acts[l + 1].assign(dims_[l + 1], 0.0);
          for (size_t o = 0; o < dims_[l + 1]; ++o) {
            double z = biases_[l][o];
            for (size_t in = 0; in < dims_[l]; ++in) {
              z += weights_[l](o, in) * acts[l][in];
            }
            // ReLU on hidden layers, identity on the output.
            acts[l + 1][o] = (l + 1 < num_layers) ? std::max(0.0, z) : z;
          }
        }
        // Backward pass (squared error).
        deltas[num_layers - 1] = {acts[num_layers][0] - ys[i]};
        for (size_t l = num_layers - 1; l-- > 0;) {
          deltas[l].assign(dims_[l + 1], 0.0);
          for (size_t o = 0; o < dims_[l + 1]; ++o) {
            if (acts[l + 1][o] <= 0.0) continue;  // ReLU gate
            double acc = 0.0;
            for (size_t next = 0; next < dims_[l + 2]; ++next) {
              acc += weights_[l + 1](next, o) * deltas[l + 1][next];
            }
            deltas[l][o] = acc;
          }
        }
        for (size_t l = 0; l < num_layers; ++l) {
          for (size_t o = 0; o < dims_[l + 1]; ++o) {
            const double d = deltas[l][o];
            if (d == 0.0) continue;
            grad_b[l][o] += d;
            for (size_t in = 0; in < dims_[l]; ++in) {
              grad_w[l][o * dims_[l] + in] += d * acts[l][in];
            }
          }
        }
      }

      ++adam_t;
      for (size_t l = 0; l < num_layers; ++l) {
        for (size_t j = 0; j < grad_w[l].size(); ++j) {
          grad_w[l][j] =
              grad_w[l][j] * inv_b + params_.l2 * weights_[l].data()[j];
        }
        for (double& g : grad_b[l]) g *= inv_b;
        AdamStep(weights_[l].data(), grad_w[l], w_state[l],
                 params_.learning_rate, adam_t);
        AdamStep(biases_[l], grad_b[l], b_state[l], params_.learning_rate,
                 adam_t);
      }
    }
  }
  WPRED_COUNT_ADD("ml.mlp.fits", 1);
  WPRED_COUNT_ADD("ml.mlp.epochs", static_cast<uint64_t>(params_.epochs));
  WPRED_COUNT_ADD("ml.mlp.adam_steps", static_cast<uint64_t>(adam_t));
  fitted_ = true;
  return Status::OK();
}

Vector MlpRegressor::Forward(const Vector& input) const {
  WPRED_DCHECK(!dims_.empty());
  WPRED_DCHECK_EQ(input.size(), dims_.front()) << "feature arity mismatch";
  Vector act = input;
  for (size_t l = 0; l + 1 < dims_.size(); ++l) {
    Vector next(dims_[l + 1], 0.0);
    for (size_t o = 0; o < dims_[l + 1]; ++o) {
      double z = biases_[l][o];
      for (size_t in = 0; in < dims_[l]; ++in) {
        z += weights_[l](o, in) * act[in];
      }
      next[o] = (l + 2 < dims_.size()) ? std::max(0.0, z) : z;
    }
    act = std::move(next);
  }
  return act;
}

Result<double> MlpRegressor::Predict(const Vector& row) const {
  if (!fitted_) return Status::FailedPrecondition("model not fitted");
  if (row.size() != dims_.front()) {
    return Status::InvalidArgument("feature arity mismatch");
  }
  if (!params_.standardize) return Forward(row)[0];
  const Vector out = Forward(x_scaler_.TransformRow(row));
  return y_scaler_.InverseTransform(out[0]);
}

}  // namespace wpred
