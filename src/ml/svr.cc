#include "ml/svr.h"

#include <cmath>

#include "common/rng.h"

namespace wpred {

double SvmRegressor::Kernel(const Vector& a, const Vector& b) const {
  if (params_.kernel == SvmKernel::kLinear) return Dot(a, b) + 1.0;
  double sq = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sq += d * d;
  }
  return std::exp(-gamma_ * sq);
}

Status SvmRegressor::Fit(const Matrix& x, const Vector& y) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("empty design matrix");
  }
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("row count mismatch between x and y");
  }
  if (params_.c <= 0.0) return Status::InvalidArgument("C must be positive");
  if (params_.epsilon < 0.0) {
    return Status::InvalidArgument("epsilon must be >= 0");
  }
  fitted_ = false;

  support_ = x_scaler_.FitTransform(x);
  y_scaler_.Fit(y);
  const Vector ys = y_scaler_.Transform(y);

  if (params_.gamma > 0.0) {
    gamma_ = params_.gamma;
  } else {
    // sklearn's "scale": 1 / (p · Var(X)); after standardisation Var ≈ 1.
    gamma_ = 1.0 / static_cast<double>(x.cols());
  }

  const size_t n = support_.rows();
  const double lambda = 1.0 / (params_.c * static_cast<double>(n));
  beta_.assign(n, 0.0);

  // Precompute the kernel matrix (training sets here are small: the paper's
  // scaling models fit on tens of points).
  Matrix k(n, n);
  for (size_t i = 0; i < n; ++i) {
    const Vector row_i = support_.Row(i);
    for (size_t j = i; j < n; ++j) {
      const double v = Kernel(row_i, support_.Row(j));
      k(i, j) = v;
      k(j, i) = v;
    }
  }

  Rng rng(params_.seed);
  uint64_t t = 1;
  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    const std::vector<size_t> order = rng.Permutation(n);
    for (size_t idx : order) {
      const double eta = 1.0 / (lambda * static_cast<double>(t));
      ++t;
      double f = 0.0;
      for (size_t j = 0; j < n; ++j) {
        if (beta_[j] != 0.0) f += beta_[j] * k(idx, j);
      }
      // Subgradient of the ε-insensitive loss, plus L2 shrinkage on β.
      const double err = ys[idx] - f;
      const double shrink = 1.0 - eta * lambda;
      for (double& b : beta_) b *= shrink;
      if (err > params_.epsilon) {
        beta_[idx] += eta;
      } else if (err < -params_.epsilon) {
        beta_[idx] -= eta;
      }
    }
  }
  fitted_ = true;
  return Status::OK();
}

Result<double> SvmRegressor::Predict(const Vector& row) const {
  if (!fitted_) return Status::FailedPrecondition("model not fitted");
  if (row.size() != support_.cols()) {
    return Status::InvalidArgument("feature arity mismatch");
  }
  const Vector z = x_scaler_.TransformRow(row);
  double f = 0.0;
  for (size_t j = 0; j < support_.rows(); ++j) {
    if (beta_[j] != 0.0) f += beta_[j] * Kernel(z, support_.Row(j));
  }
  return y_scaler_.InverseTransform(f);
}

size_t SvmRegressor::NumSupportVectors() const {
  size_t count = 0;
  for (double b : beta_) {
    if (b != 0.0) ++count;
  }
  return count;
}

}  // namespace wpred
