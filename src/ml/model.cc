#include "ml/model.h"

namespace wpred {

Result<Vector> Regressor::PredictBatch(const Matrix& x) const {
  Vector out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    WPRED_ASSIGN_OR_RETURN(out[r], Predict(x.Row(r)));
  }
  return out;
}

Result<std::vector<int>> Classifier::PredictBatch(const Matrix& x) const {
  std::vector<int> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    WPRED_ASSIGN_OR_RETURN(out[r], Predict(x.Row(r)));
  }
  return out;
}

}  // namespace wpred
