#include "ml/metrics.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "linalg/stats.h"

namespace wpred {

double Rmse(const Vector& y_true, const Vector& y_pred) {
  WPRED_CHECK_EQ(y_true.size(), y_pred.size());
  WPRED_CHECK(!y_true.empty());
  double acc = 0.0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    const double d = y_true[i] - y_pred[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(y_true.size()));
}

double Nrmse(const Vector& y_true, const Vector& y_pred) {
  const double rmse = Rmse(y_true, y_pred);
  const double range = Max(y_true) - Min(y_true);
  if (range > 0.0) return rmse / range;
  const double mean = std::fabs(Mean(y_true));
  if (mean > 0.0) return rmse / mean;
  // All-zero truth: no range, no mean — NaN, never raw-RMSE units.
  return rmse == 0.0 ? 0.0 : std::numeric_limits<double>::quiet_NaN();
}

MapeResult MapeDetail(const Vector& y_true, const Vector& y_pred) {
  WPRED_CHECK_EQ(y_true.size(), y_pred.size());
  MapeResult result;
  double acc = 0.0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    if (y_true[i] == 0.0) {
      ++result.skipped;
      continue;
    }
    acc += std::fabs((y_true[i] - y_pred[i]) / y_true[i]);
    ++result.used;
  }
  result.mape = result.used > 0
                    ? acc / static_cast<double>(result.used)
                    : std::numeric_limits<double>::quiet_NaN();
  return result;
}

double Mape(const Vector& y_true, const Vector& y_pred) {
  return MapeDetail(y_true, y_pred).mape;
}

double R2(const Vector& y_true, const Vector& y_pred) {
  WPRED_CHECK_EQ(y_true.size(), y_pred.size());
  WPRED_CHECK(!y_true.empty());
  const double mean = Mean(y_true);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    ss_res += (y_true[i] - y_pred[i]) * (y_true[i] - y_pred[i]);
    ss_tot += (y_true[i] - mean) * (y_true[i] - mean);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double Accuracy(const std::vector<int>& y_true,
                const std::vector<int>& y_pred) {
  WPRED_CHECK_EQ(y_true.size(), y_pred.size());
  WPRED_CHECK(!y_true.empty());
  size_t hits = 0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    if (y_true[i] == y_pred[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(y_true.size());
}

double MeanAbsoluteError(const Vector& y_true, const Vector& y_pred) {
  WPRED_CHECK_EQ(y_true.size(), y_pred.size());
  WPRED_CHECK(!y_true.empty());
  double acc = 0.0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    acc += std::fabs(y_true[i] - y_pred[i]);
  }
  return acc / static_cast<double>(y_true.size());
}

}  // namespace wpred
