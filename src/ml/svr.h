#ifndef WPRED_ML_SVR_H_
#define WPRED_ML_SVR_H_

#include <vector>

#include "linalg/stats.h"
#include "ml/model.h"

namespace wpred {

enum class SvmKernel { kLinear, kRbf };

/// ε-SVR hyper-parameters.
struct SvrParams {
  SvmKernel kernel = SvmKernel::kRbf;
  /// RBF width; <= 0 means the "scale" heuristic 1 / (p · Var(X)).
  double gamma = -1.0;
  /// Regularisation trade-off (larger C = less regularisation).
  double c = 10.0;
  /// ε-insensitive tube half-width, in standardised-target units.
  double epsilon = 0.05;
  int epochs = 200;
  uint64_t seed = 31;
};

/// Kernel ε-insensitive support vector regression trained with a
/// Pegasos-style stochastic subgradient method in the kernel dual
/// (Shalev-Shwartz et al.; the kernelised variant keeps one coefficient per
/// training point). Inputs and the target are standardised internally, which
/// makes the default C/ε/γ work across the paper's throughput scales.
class SvmRegressor : public Regressor {
 public:
  explicit SvmRegressor(SvrParams params = {}) : params_(params) {}

  Status Fit(const Matrix& x, const Vector& y) override;
  Result<double> Predict(const Vector& row) const override;
  bool fitted() const override { return fitted_; }

  /// Number of training points with non-zero dual coefficient.
  size_t NumSupportVectors() const;

 private:
  double Kernel(const Vector& a, const Vector& b) const;

  SvrParams params_;
  StandardScaler x_scaler_;
  TargetScaler y_scaler_;
  Matrix support_;   // standardised training rows
  Vector beta_;      // dual coefficients
  double gamma_ = 1.0;
  bool fitted_ = false;
};

}  // namespace wpred

#endif  // WPRED_ML_SVR_H_
