#ifndef WPRED_ML_RANDOM_FOREST_H_
#define WPRED_ML_RANDOM_FOREST_H_

#include <vector>

#include "ml/decision_tree.h"
#include "ml/model.h"

namespace wpred {

/// Random-forest hyper-parameters.
struct ForestParams {
  int num_trees = 100;
  int max_depth = 12;
  size_t min_samples_leaf = 1;
  /// Features per split; 0 means sqrt(p) for classification, p/3 for
  /// regression (the usual defaults).
  size_t max_features = 0;
  uint64_t seed = 17;
  /// Worker threads for per-tree fitting; < 1 means the process default
  /// (WPRED_THREADS), 1 forces the serial path. Every tree derives its RNG
  /// streams from `seed` and its own index, so the fitted forest is
  /// bit-identical at any thread count.
  int num_threads = 0;
};

/// Bagged CART regression forest with feature subsampling. Importances are
/// the mean impurity-decrease importance over trees (the embedded
/// feature-selection signal in Section 4.1.2).
class RandomForestRegressor : public Regressor {
 public:
  explicit RandomForestRegressor(ForestParams params = {}) : params_(params) {}

  Status Fit(const Matrix& x, const Vector& y) override;

  /// Incremental model refresh: fits `additional` more trees on (x, y) and
  /// appends them to the forest. Tree t forks its RNG streams with tags
  /// (2t, 2t+1) that depend only on t, so Fit with num_trees = T followed
  /// by GrowTrees(x, y, A) on the same data is bit-identical to one Fit
  /// with num_trees = T + A — predictions, importances, everything. With
  /// fresh window data the new trees bag over the new sample instead
  /// (the streaming refresh path), trading exact equivalence for a forest
  /// that tracks the regime without refitting the first T trees.
  Status GrowTrees(const Matrix& x, const Vector& y, int additional);

  Result<double> Predict(const Vector& row) const override;
  bool fitted() const override { return !trees_.empty(); }
  Result<Vector> FeatureImportances() const override;

  /// Trees fitted so far (Fit plus every GrowTrees).
  int num_trees() const { return static_cast<int>(trees_.size()); }

 private:
  ForestParams params_;
  std::vector<internal::FittedTree> trees_;
  size_t num_features_ = 0;
};

/// Bagged CART classification forest (majority vote).
class RandomForestClassifier : public Classifier {
 public:
  explicit RandomForestClassifier(ForestParams params = {}) : params_(params) {}

  Status Fit(const Matrix& x, const std::vector<int>& y) override;
  Result<int> Predict(const Vector& row) const override;
  bool fitted() const override { return !trees_.empty(); }
  Result<Vector> FeatureImportances() const override;

 private:
  ForestParams params_;
  std::vector<internal::FittedTree> trees_;
  size_t num_features_ = 0;
  int num_classes_ = 0;
};

}  // namespace wpred

#endif  // WPRED_ML_RANDOM_FOREST_H_
