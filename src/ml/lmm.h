#ifndef WPRED_ML_LMM_H_
#define WPRED_ML_LMM_H_

#include <map>
#include <vector>

#include "ml/model.h"

namespace wpred {

/// Linear mixed-effects model with a random intercept per group:
///
///   y_ij = x_ij'β + b + u_j + ε_ij,   u_j ~ N(0, σ_u²),  ε ~ N(0, σ_e²)
///
/// fit by EM-style alternation between GLS for the fixed effects and BLUP /
/// variance-component updates. Groups model the paper's time-of-day data
/// groups (Section 6.2.1, Figure 8): predictions can target a known group
/// (fixed + random effect) or marginalise over groups (fixed effects only).
class LinearMixedModel {
 public:
  explicit LinearMixedModel(int max_iter = 60, double tol = 1e-8)
      : max_iter_(max_iter), tol_(tol) {}

  /// Fits on observations with group identifiers (arbitrary ints).
  Status Fit(const Matrix& x, const Vector& y, const std::vector<int>& groups);

  /// Marginal prediction (random effect = 0).
  Result<double> Predict(const Vector& row) const;

  /// Group-conditional prediction; unknown groups fall back to marginal.
  Result<double> PredictForGroup(const Vector& row, int group) const;

  /// Approximate half-width of the 95% prediction interval.
  Result<double> PredictionHalfWidth95() const;

  bool fitted() const { return fitted_; }
  double sigma_u2() const { return sigma_u2_; }
  double sigma_e2() const { return sigma_e2_; }
  const Vector& fixed_effects() const { return beta_; }
  double intercept() const { return intercept_; }
  /// Estimated random intercept of a group (0 if unseen).
  double RandomEffect(int group) const;

 private:
  int max_iter_;
  double tol_;

  Vector beta_;
  double intercept_ = 0.0;
  std::map<int, double> random_effects_;
  double sigma_u2_ = 0.0;
  double sigma_e2_ = 0.0;
  size_t num_features_ = 0;
  bool fitted_ = false;
};

/// Adapter exposing the LMM through the Regressor interface. Fit() derives
/// groups from a caller-provided column index (the group id is stored as a
/// feature column); prediction is group-conditional when that column holds a
/// known group and marginal otherwise.
class LmmRegressor : public Regressor {
 public:
  /// `group_column`: index of the feature column holding group ids. That
  /// column is excluded from the fixed-effects design.
  explicit LmmRegressor(size_t group_column) : group_column_(group_column) {}

  Status Fit(const Matrix& x, const Vector& y) override;
  Result<double> Predict(const Vector& row) const override;
  bool fitted() const override { return model_.fitted(); }

 private:
  std::vector<size_t> FixedColumns(size_t total) const;

  size_t group_column_;
  LinearMixedModel model_;
  size_t num_features_ = 0;
};

}  // namespace wpred

#endif  // WPRED_ML_LMM_H_
