#ifndef WPRED_ML_MODEL_H_
#define WPRED_ML_MODEL_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace wpred {

/// Single-output regression model interface. Implementations must be
/// re-fittable: Fit() discards any previous state.
class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Trains on rows of `x` against targets `y` (equal row counts).
  virtual Status Fit(const Matrix& x, const Vector& y) = 0;

  /// Predicts one observation (arity must match training data).
  virtual Result<double> Predict(const Vector& row) const = 0;

  /// Predicts every row of `x`.
  Result<Vector> PredictBatch(const Matrix& x) const;

  /// True once Fit() succeeded.
  virtual bool fitted() const = 0;

  /// Per-feature importance scores (non-negative), if the model exposes
  /// them. Default: Unimplemented.
  virtual Result<Vector> FeatureImportances() const {
    return Status::Unimplemented("model exposes no feature importances");
  }
};

/// Multi-class classification model interface (labels are 0-based ints).
class Classifier {
 public:
  virtual ~Classifier() = default;

  virtual Status Fit(const Matrix& x, const std::vector<int>& y) = 0;
  virtual Result<int> Predict(const Vector& row) const = 0;

  Result<std::vector<int>> PredictBatch(const Matrix& x) const;

  virtual bool fitted() const = 0;

  virtual Result<Vector> FeatureImportances() const {
    return Status::Unimplemented("model exposes no feature importances");
  }
};

}  // namespace wpred

#endif  // WPRED_ML_MODEL_H_
