#include "ml/mars.h"

#include <algorithm>
#include <cmath>

#include "linalg/solve.h"
#include "linalg/stats.h"

namespace wpred {
namespace {

// Least-squares fit of [1 | columns] against y; returns SSE and writes the
// solution (intercept first).
Result<double> FitColumns(const std::vector<Vector>& columns, const Vector& y,
                          Vector* solution) {
  const size_t n = y.size();
  Matrix design(n, columns.size() + 1);
  for (size_t r = 0; r < n; ++r) {
    design(r, 0) = 1.0;
    for (size_t c = 0; c < columns.size(); ++c) design(r, c + 1) = columns[c][r];
  }
  WPRED_ASSIGN_OR_RETURN(Vector w, SolveLeastSquares(design, y, 1e-8));
  double sse = 0.0;
  for (size_t r = 0; r < n; ++r) {
    const double pred = Dot(design.Row(r), w);
    sse += (y[r] - pred) * (y[r] - pred);
  }
  if (solution != nullptr) *solution = std::move(w);
  return sse;
}

}  // namespace

double MarsRegressor::EvaluateTerm(const Hinge& term, const Vector& row) const {
  const double d = term.positive ? row[term.feature] - term.knot
                                 : term.knot - row[term.feature];
  return std::max(0.0, d);
}

Status MarsRegressor::Fit(const Matrix& x, const Vector& y) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("empty design matrix");
  }
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("row count mismatch between x and y");
  }
  fitted_ = false;
  terms_.clear();
  num_features_ = x.cols();
  const size_t n = x.rows();

  // Candidate knots: interior quantiles of each feature.
  std::vector<std::vector<double>> knots(x.cols());
  for (size_t f = 0; f < x.cols(); ++f) {
    Vector col = x.Col(f);
    std::sort(col.begin(), col.end());
    col.erase(std::unique(col.begin(), col.end()), col.end());
    if (col.size() < 2) continue;  // constant feature: no knots
    const size_t want = std::min(params_.knots_per_feature, col.size() - 1);
    for (size_t k = 0; k < want; ++k) {
      const double q = static_cast<double>(k + 1) / (want + 1);
      knots[f].push_back(Quantile(col, q));
    }
  }

  // Forward pass: greedily add the best hinge pair.
  std::vector<Vector> columns;  // basis columns (without intercept)
  std::vector<Hinge> hinges;
  WPRED_ASSIGN_OR_RETURN(double best_sse, FitColumns(columns, y, nullptr));
  while (hinges.size() + 2 <= params_.max_terms) {
    double round_best = best_sse;
    Hinge round_pos{0, 0.0, true};
    bool found = false;
    for (size_t f = 0; f < x.cols(); ++f) {
      for (double knot : knots[f]) {
        // Build the pair's columns.
        Vector pos(n), neg(n);
        for (size_t r = 0; r < n; ++r) {
          pos[r] = std::max(0.0, x(r, f) - knot);
          neg[r] = std::max(0.0, knot - x(r, f));
        }
        columns.push_back(std::move(pos));
        columns.push_back(std::move(neg));
        const Result<double> sse = FitColumns(columns, y, nullptr);
        columns.pop_back();
        columns.pop_back();
        if (sse.ok() && sse.value() < round_best - 1e-12) {
          round_best = sse.value();
          round_pos = {f, knot, true};
          found = true;
        }
      }
    }
    if (!found) break;
    for (bool positive : {true, false}) {
      Hinge h{round_pos.feature, round_pos.knot, positive};
      Vector col(n);
      for (size_t r = 0; r < n; ++r) col[r] = EvaluateTerm(h, x.Row(r));
      columns.push_back(std::move(col));
      hinges.push_back(h);
    }
    best_sse = round_best;
  }

  // Backward pass: drop terms while GCV improves.
  auto gcv = [&](double sse, size_t num_terms) {
    const double c =
        1.0 + static_cast<double>(num_terms) +
        params_.gcv_penalty * (static_cast<double>(num_terms) / 2.0);
    const double denom = 1.0 - c / static_cast<double>(n);
    if (denom <= 0.0) return 1e300;
    return (sse / static_cast<double>(n)) / (denom * denom);
  };

  WPRED_ASSIGN_OR_RETURN(double current_sse, FitColumns(columns, y, nullptr));
  double current_gcv = gcv(current_sse, hinges.size());
  bool improved = true;
  while (improved && !hinges.empty()) {
    improved = false;
    size_t drop = 0;
    double best_gcv = current_gcv;
    double best_drop_sse = current_sse;
    for (size_t i = 0; i < hinges.size(); ++i) {
      std::vector<Vector> reduced = columns;
      reduced.erase(reduced.begin() + static_cast<long>(i));
      const Result<double> sse = FitColumns(reduced, y, nullptr);
      if (!sse.ok()) continue;
      const double candidate = gcv(sse.value(), hinges.size() - 1);
      if (candidate < best_gcv - 1e-12) {
        best_gcv = candidate;
        best_drop_sse = sse.value();
        drop = i;
        improved = true;
      }
    }
    if (improved) {
      columns.erase(columns.begin() + static_cast<long>(drop));
      hinges.erase(hinges.begin() + static_cast<long>(drop));
      current_gcv = best_gcv;
      current_sse = best_drop_sse;
    }
  }

  Vector solution;
  WPRED_RETURN_IF_ERROR(FitColumns(columns, y, &solution).status());
  intercept_ = solution[0];
  coef_.assign(solution.begin() + 1, solution.end());
  terms_ = std::move(hinges);
  fitted_ = true;
  return Status::OK();
}

Result<double> MarsRegressor::Predict(const Vector& row) const {
  if (!fitted_) return Status::FailedPrecondition("model not fitted");
  if (row.size() != num_features_) {
    return Status::InvalidArgument("feature arity mismatch");
  }
  double acc = intercept_;
  for (size_t i = 0; i < terms_.size(); ++i) {
    acc += coef_[i] * EvaluateTerm(terms_[i], row);
  }
  return acc;
}

}  // namespace wpred
