#include "ml/gradient_boosting.h"

#include <algorithm>
#include <numeric>

#include "common/rng.h"
#include "linalg/stats.h"

namespace wpred {

Status GradientBoostingRegressor::Fit(const Matrix& x, const Vector& y) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("empty design matrix");
  }
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("row count mismatch between x and y");
  }
  if (params_.num_stages < 1) {
    return Status::InvalidArgument("num_stages must be >= 1");
  }
  if (params_.learning_rate <= 0.0) {
    return Status::InvalidArgument("learning_rate must be positive");
  }
  if (params_.subsample <= 0.0 || params_.subsample > 1.0) {
    return Status::InvalidArgument("subsample must be in (0, 1]");
  }
  fitted_ = false;
  stages_.clear();
  num_features_ = x.cols();

  base_prediction_ = Mean(y);
  Vector residual(y.size());
  for (size_t i = 0; i < y.size(); ++i) residual[i] = y[i] - base_prediction_;

  TreeParams tree_params;
  tree_params.max_depth = params_.max_depth;
  tree_params.min_samples_leaf = params_.min_samples_leaf;

  Rng rng(params_.seed);
  const size_t rows_per_stage = std::max<size_t>(
      1, static_cast<size_t>(params_.subsample * static_cast<double>(x.rows())));

  stages_.reserve(params_.num_stages);
  for (int stage = 0; stage < params_.num_stages; ++stage) {
    std::vector<size_t> rows;
    if (rows_per_stage == x.rows()) {
      rows.resize(x.rows());
      std::iota(rows.begin(), rows.end(), 0);
    } else {
      rows = rng.Permutation(x.rows());
      rows.resize(rows_per_stage);
    }
    internal::FittedTree tree = internal::BuildTree(
        x, residual, /*classification=*/false, 0, tree_params, rows);
    for (size_t i = 0; i < x.rows(); ++i) {
      residual[i] -= params_.learning_rate * tree.Evaluate(x.Row(i));
    }
    stages_.push_back(std::move(tree));
  }
  fitted_ = true;
  return Status::OK();
}

Result<double> GradientBoostingRegressor::Predict(const Vector& row) const {
  if (!fitted_) return Status::FailedPrecondition("model not fitted");
  if (row.size() != num_features_) {
    return Status::InvalidArgument("feature arity mismatch");
  }
  double acc = base_prediction_;
  for (const auto& tree : stages_) {
    acc += params_.learning_rate * tree.Evaluate(row);
  }
  return acc;
}

Result<Vector> GradientBoostingRegressor::FeatureImportances() const {
  if (!fitted_) return Status::FailedPrecondition("model not fitted");
  Vector importances(num_features_, 0.0);
  for (const auto& tree : stages_) {
    for (size_t f = 0; f < num_features_; ++f) {
      importances[f] += tree.importances[f];
    }
  }
  double total = 0.0;
  for (double v : importances) total += v;
  if (total > 0.0) {
    for (double& v : importances) v /= total;
  }
  return importances;
}

}  // namespace wpred
