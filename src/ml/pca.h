#ifndef WPRED_ML_PCA_H_
#define WPRED_ML_PCA_H_

#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/stats.h"

namespace wpred {

/// Principal component analysis (paper Appendix C): an *alternative* to
/// feature selection that projects the standardised feature space onto the
/// directions of maximal variance. The paper discusses its drawbacks in this
/// pipeline — components mix original features (no interpretability), the
/// projection ignores the modelling objective, and sparse feature spaces
/// degrade it — which the ablation bench `bench_ablation_pca_vs_selection`
/// quantifies.
class Pca {
 public:
  /// Fits on rows of `x` (observations × features): standardises columns,
  /// eigendecomposes the correlation matrix. `num_components` in
  /// [1, features].
  Status Fit(const Matrix& x, size_t num_components);

  /// Projects observations into component space (rows × num_components).
  Result<Matrix> Transform(const Matrix& x) const;

  /// Maps component-space points back to (standardised) feature space.
  Result<Matrix> InverseTransform(const Matrix& z) const;

  bool fitted() const { return fitted_; }
  size_t num_components() const { return components_.cols(); }

  /// Fraction of total variance captured by each retained component.
  const Vector& explained_variance_ratio() const {
    return explained_variance_ratio_;
  }
  /// Columns are unit-norm principal directions in feature space.
  const Matrix& components() const { return components_; }

 private:
  StandardScaler scaler_;
  Matrix components_;  // features × num_components
  Vector explained_variance_ratio_;
  bool fitted_ = false;
};

}  // namespace wpred

#endif  // WPRED_ML_PCA_H_
