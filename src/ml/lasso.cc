#include "ml/lasso.h"

#include <algorithm>
#include <cmath>

#include "linalg/stats.h"
#include "obs/metrics.h"

namespace wpred {
namespace {

double SoftThreshold(double value, double threshold) {
  if (value > threshold) return value - threshold;
  if (value < -threshold) return value + threshold;
  return 0.0;
}

struct Standardised {
  Matrix x;
  Vector y_centered;
  Vector mean;
  Vector scale;
  double y_mean;
};

Standardised StandardiseProblem(const Matrix& x, const Vector& y) {
  Standardised s;
  const ColumnStats stats = ComputeColumnStats(x);
  s.mean = stats.mean;
  s.scale = stats.stddev;
  s.x = Matrix(x.rows(), x.cols());
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t c = 0; c < x.cols(); ++c) {
      s.x(r, c) =
          s.scale[c] > 0.0 ? (x(r, c) - s.mean[c]) / s.scale[c] : 0.0;
    }
  }
  s.y_mean = Mean(y);
  s.y_centered.resize(y.size());
  for (size_t i = 0; i < y.size(); ++i) s.y_centered[i] = y[i] - s.y_mean;
  return s;
}

// Cyclic coordinate descent on the standardised problem. `coef` is the
// warm start and receives the solution. Returns the number of full sweeps
// taken (== max_iter when the tolerance was never reached).
int CoordinateDescent(const Matrix& x, const Vector& y, double alpha,
                      double l1_ratio, int max_iter, double tol,
                      Vector& coef) {
  const size_t n = x.rows();
  const size_t p = x.cols();
  const double inv_n = 1.0 / static_cast<double>(n);

  // Column squared norms / n (constant during descent).
  Vector col_sq(p, 0.0);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < p; ++c) col_sq[c] += x(r, c) * x(r, c);
  }
  for (size_t c = 0; c < p; ++c) col_sq[c] *= inv_n;

  // Residual r = y - X coef.
  Vector residual = y;
  for (size_t c = 0; c < p; ++c) {
    if (coef[c] == 0.0) continue;
    for (size_t r = 0; r < n; ++r) residual[r] -= x(r, c) * coef[c];
  }

  const double l1 = alpha * l1_ratio;
  const double l2 = alpha * (1.0 - l1_ratio);
  int iters = 0;
  for (int iter = 0; iter < max_iter; ++iter) {
    ++iters;
    double max_delta = 0.0;
    for (size_t c = 0; c < p; ++c) {
      if (col_sq[c] == 0.0) continue;
      double rho = 0.0;
      for (size_t r = 0; r < n; ++r) rho += x(r, c) * residual[r];
      rho = rho * inv_n + col_sq[c] * coef[c];
      const double updated = SoftThreshold(rho, l1) / (col_sq[c] + l2);
      const double delta = updated - coef[c];
      if (delta != 0.0) {
        for (size_t r = 0; r < n; ++r) residual[r] -= x(r, c) * delta;
        coef[c] = updated;
        max_delta = std::max(max_delta, std::fabs(delta));
      }
    }
    if (max_delta < tol) break;
  }
  WPRED_COUNT_ADD("ml.lasso.cd_calls", 1);
  WPRED_COUNT_ADD("ml.lasso.cd_sweeps", static_cast<uint64_t>(iters));
  return iters;
}

}  // namespace

Status ElasticNet::Fit(const Matrix& x, const Vector& y) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("empty design matrix");
  }
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("row count mismatch between x and y");
  }
  if (alpha_ < 0.0) return Status::InvalidArgument("alpha must be >= 0");
  if (l1_ratio_ < 0.0 || l1_ratio_ > 1.0) {
    return Status::InvalidArgument("l1_ratio must be in [0, 1]");
  }
  fitted_ = false;

  const Standardised s = StandardiseProblem(x, y);
  feature_mean_ = s.mean;
  feature_scale_ = s.scale;
  intercept_ = s.y_mean;
  // Coefficients live in the standardised space, so the previous solution
  // is a valid starting point for the re-standardised problem whenever the
  // arity matches.
  if (!(warm_start_ && coef_.size() == x.cols())) {
    coef_.assign(x.cols(), 0.0);
  }
  last_sweeps_ = CoordinateDescent(s.x, s.y_centered, alpha_, l1_ratio_,
                                   max_iter_, tol_, coef_);
  fitted_ = true;
  return Status::OK();
}

Result<double> ElasticNet::Predict(const Vector& row) const {
  if (!fitted_) return Status::FailedPrecondition("model not fitted");
  if (row.size() != coef_.size()) {
    return Status::InvalidArgument("feature arity mismatch");
  }
  double acc = intercept_;
  for (size_t c = 0; c < row.size(); ++c) {
    if (feature_scale_[c] > 0.0) {
      acc += coef_[c] * (row[c] - feature_mean_[c]) / feature_scale_[c];
    }
  }
  return acc;
}

Result<Vector> ElasticNet::FeatureImportances() const {
  if (!fitted_) return Status::FailedPrecondition("model not fitted");
  Vector importances(coef_.size());
  for (size_t i = 0; i < coef_.size(); ++i) {
    importances[i] = std::fabs(coef_[i]);
  }
  return importances;
}

double LassoAlphaMax(const Matrix& x, const Vector& y) {
  WPRED_CHECK_GT(x.rows(), 0u);
  WPRED_CHECK_EQ(x.rows(), y.size());
  const Standardised s = StandardiseProblem(x, y);
  double max_corr = 0.0;
  for (size_t c = 0; c < x.cols(); ++c) {
    double acc = 0.0;
    for (size_t r = 0; r < x.rows(); ++r) acc += s.x(r, c) * s.y_centered[r];
    max_corr = std::max(max_corr, std::fabs(acc) / x.rows());
  }
  return max_corr;
}

Result<LassoPathResult> LassoPath(const Matrix& x, const Vector& y,
                                  int num_alphas, double alpha_min_ratio) {
  if (num_alphas < 2) return Status::InvalidArgument("need >= 2 alphas");
  if (alpha_min_ratio <= 0.0 || alpha_min_ratio >= 1.0) {
    return Status::InvalidArgument("alpha_min_ratio must be in (0, 1)");
  }
  if (x.rows() == 0 || x.rows() != y.size()) {
    return Status::InvalidArgument("bad problem shape");
  }

  const double alpha_max = LassoAlphaMax(x, y);
  if (alpha_max == 0.0) {
    return Status::NumericalError("target uncorrelated with every feature");
  }
  const Standardised s = StandardiseProblem(x, y);

  LassoPathResult path;
  path.alphas.resize(num_alphas);
  path.coefficients = Matrix(num_alphas, x.cols());
  const double log_max = std::log(alpha_max);
  const double log_min = std::log(alpha_max * alpha_min_ratio);

  Vector coef(x.cols(), 0.0);  // warm start down the path
  for (int a = 0; a < num_alphas; ++a) {
    const double frac = static_cast<double>(a) / (num_alphas - 1);
    const double alpha = std::exp(log_max + (log_min - log_max) * frac);
    path.alphas[a] = alpha;
    CoordinateDescent(s.x, s.y_centered, alpha, 1.0, 1000, 1e-6, coef);
    path.coefficients.SetRow(a, coef);
  }
  return path;
}

}  // namespace wpred
