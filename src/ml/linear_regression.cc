#include "ml/linear_regression.h"

#include <cmath>

#include "linalg/solve.h"

namespace wpred {

Status LinearRegression::Fit(const Matrix& x, const Vector& y) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("empty design matrix");
  }
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("row count mismatch between x and y");
  }
  fitted_ = false;

  // Augment with an (un-regularised via tiny ridge share) intercept column.
  Matrix design(x.rows(), x.cols() + 1);
  for (size_t r = 0; r < x.rows(); ++r) {
    design(r, 0) = 1.0;
    for (size_t c = 0; c < x.cols(); ++c) design(r, c + 1) = x(r, c);
  }
  WPRED_ASSIGN_OR_RETURN(Vector w, SolveLeastSquares(design, y, ridge_));
  intercept_ = w[0];
  coef_.assign(w.begin() + 1, w.end());
  fitted_ = true;
  return Status::OK();
}

Result<double> LinearRegression::Predict(const Vector& row) const {
  if (!fitted_) return Status::FailedPrecondition("model not fitted");
  if (row.size() != coef_.size()) {
    return Status::InvalidArgument("feature arity mismatch");
  }
  return intercept_ + Dot(coef_, row);
}

Result<Vector> LinearRegression::FeatureImportances() const {
  if (!fitted_) return Status::FailedPrecondition("model not fitted");
  Vector importances(coef_.size());
  for (size_t i = 0; i < coef_.size(); ++i) {
    importances[i] = std::fabs(coef_[i]);
  }
  return importances;
}

Matrix PolynomialExpand(const Matrix& x, int degree) {
  WPRED_CHECK_GE(degree, 1);
  Matrix out(x.rows(), x.cols() * static_cast<size_t>(degree));
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t c = 0; c < x.cols(); ++c) {
      double power = 1.0;
      for (int d = 0; d < degree; ++d) {
        power *= x(r, c);
        out(r, c + static_cast<size_t>(d) * x.cols()) = power;
      }
    }
  }
  return out;
}

Status PolynomialRegression::Fit(const Matrix& x, const Vector& y) {
  if (degree_ < 1) return Status::InvalidArgument("degree must be >= 1");
  return linear_.Fit(PolynomialExpand(x, degree_), y);
}

Result<double> PolynomialRegression::Predict(const Vector& row) const {
  const Matrix expanded = PolynomialExpand(Matrix::FromRows({row}), degree_);
  return linear_.Predict(expanded.Row(0));
}

}  // namespace wpred
