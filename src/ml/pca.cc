#include "ml/pca.h"

#include "linalg/eigen.h"

namespace wpred {

Status Pca::Fit(const Matrix& x, size_t num_components) {
  if (x.rows() < 2 || x.cols() == 0) {
    return Status::InvalidArgument("need >= 2 observations");
  }
  if (num_components < 1 || num_components > x.cols()) {
    return Status::InvalidArgument("num_components out of range");
  }
  fitted_ = false;

  const Matrix z = scaler_.FitTransform(x);
  // Correlation matrix of the standardised data.
  Matrix cov = z.Transposed() * z;
  const double inv_n = 1.0 / static_cast<double>(x.rows());
  for (double& v : cov.data()) v *= inv_n;

  WPRED_ASSIGN_OR_RETURN(EigenDecomposition eig, JacobiEigen(cov));

  double total_variance = 0.0;
  for (double lambda : eig.values) total_variance += std::max(0.0, lambda);
  if (total_variance <= 0.0) {
    return Status::NumericalError("data has no variance");
  }

  components_ = Matrix(x.cols(), num_components);
  explained_variance_ratio_.assign(num_components, 0.0);
  for (size_t j = 0; j < num_components; ++j) {
    for (size_t i = 0; i < x.cols(); ++i) {
      components_(i, j) = eig.vectors(i, j);
    }
    explained_variance_ratio_[j] =
        std::max(0.0, eig.values[j]) / total_variance;
  }
  fitted_ = true;
  return Status::OK();
}

Result<Matrix> Pca::Transform(const Matrix& x) const {
  if (!fitted_) return Status::FailedPrecondition("PCA not fitted");
  if (x.cols() != components_.rows()) {
    return Status::InvalidArgument("feature arity mismatch");
  }
  return scaler_.Transform(x) * components_;
}

Result<Matrix> Pca::InverseTransform(const Matrix& z) const {
  if (!fitted_) return Status::FailedPrecondition("PCA not fitted");
  if (z.cols() != components_.cols()) {
    return Status::InvalidArgument("component arity mismatch");
  }
  return z * components_.Transposed();
}

}  // namespace wpred
