#include "ml/lmm.h"

#include <cmath>

#include "linalg/solve.h"
#include "linalg/stats.h"

namespace wpred {

Status LinearMixedModel::Fit(const Matrix& x, const Vector& y,
                             const std::vector<int>& groups) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("empty design matrix");
  }
  if (x.rows() != y.size() || x.rows() != groups.size()) {
    return Status::InvalidArgument("row count mismatch");
  }
  fitted_ = false;
  num_features_ = x.cols();

  // Group bookkeeping.
  std::map<int, std::vector<size_t>> members;
  for (size_t i = 0; i < groups.size(); ++i) members[groups[i]].push_back(i);

  const size_t n = x.rows();
  Matrix design(n, x.cols() + 1);
  for (size_t r = 0; r < n; ++r) {
    design(r, 0) = 1.0;
    for (size_t c = 0; c < x.cols(); ++c) design(r, c + 1) = x(r, c);
  }

  // Initialise with OLS; variance components from the residual split.
  WPRED_ASSIGN_OR_RETURN(Vector w, SolveLeastSquares(design, y, 1e-10));
  sigma_e2_ = 1.0;
  sigma_u2_ = 1.0;

  Vector residual(n);
  std::map<int, double> u;
  for (const auto& [g, idx] : members) u[g] = 0.0;

  double prev_objective = 1e300;
  for (int iter = 0; iter < max_iter_; ++iter) {
    // E-step: BLUP random intercepts given β.
    for (size_t r = 0; r < n; ++r) residual[r] = y[r] - Dot(design.Row(r), w);
    for (const auto& [g, idx] : members) {
      double mean_res = 0.0;
      for (size_t i : idx) mean_res += residual[i];
      mean_res /= static_cast<double>(idx.size());
      const double ng = static_cast<double>(idx.size());
      const double shrink = ng * sigma_u2_ / (ng * sigma_u2_ + sigma_e2_);
      u[g] = shrink * mean_res;
    }
    // M-step 1: refit β on y with random effects removed.
    Vector adjusted(n);
    for (size_t r = 0; r < n; ++r) adjusted[r] = y[r] - u[groups[r]];
    WPRED_ASSIGN_OR_RETURN(w, SolveLeastSquares(design, adjusted, 1e-10));
    // M-step 2: variance components from within/between residuals.
    double sse = 0.0;
    for (size_t r = 0; r < n; ++r) {
      const double e = y[r] - Dot(design.Row(r), w) - u[groups[r]];
      sse += e * e;
    }
    sigma_e2_ = std::max(1e-12, sse / static_cast<double>(n));
    double uss = 0.0;
    for (const auto& [g, idx] : members) {
      const double ng = static_cast<double>(idx.size());
      // E[u²] = BLUP² + posterior variance.
      const double post_var =
          sigma_u2_ * sigma_e2_ / (ng * sigma_u2_ + sigma_e2_);
      uss += u[g] * u[g] + post_var;
    }
    sigma_u2_ = std::max(1e-12, uss / static_cast<double>(members.size()));

    const double objective = sse;
    if (std::fabs(prev_objective - objective) <
        tol_ * (1.0 + std::fabs(objective))) {
      break;
    }
    prev_objective = objective;
  }

  intercept_ = w[0];
  beta_.assign(w.begin() + 1, w.end());
  random_effects_ = std::move(u);
  fitted_ = true;
  return Status::OK();
}

Result<double> LinearMixedModel::Predict(const Vector& row) const {
  if (!fitted_) return Status::FailedPrecondition("model not fitted");
  if (row.size() != num_features_) {
    return Status::InvalidArgument("feature arity mismatch");
  }
  return intercept_ + Dot(beta_, row);
}

Result<double> LinearMixedModel::PredictForGroup(const Vector& row,
                                                 int group) const {
  WPRED_ASSIGN_OR_RETURN(double marginal, Predict(row));
  return marginal + RandomEffect(group);
}

double LinearMixedModel::RandomEffect(int group) const {
  const auto it = random_effects_.find(group);
  return it != random_effects_.end() ? it->second : 0.0;
}

Result<double> LinearMixedModel::PredictionHalfWidth95() const {
  if (!fitted_) return Status::FailedPrecondition("model not fitted");
  return 1.96 * std::sqrt(sigma_e2_ + sigma_u2_);
}

std::vector<size_t> LmmRegressor::FixedColumns(size_t total) const {
  std::vector<size_t> cols;
  for (size_t c = 0; c < total; ++c) {
    if (c != group_column_) cols.push_back(c);
  }
  return cols;
}

Status LmmRegressor::Fit(const Matrix& x, const Vector& y) {
  if (x.cols() <= group_column_) {
    return Status::InvalidArgument("group column out of range");
  }
  if (x.cols() < 2) {
    return Status::InvalidArgument("need at least one fixed-effect feature");
  }
  num_features_ = x.cols();
  std::vector<int> groups(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    groups[r] = static_cast<int>(std::llround(x(r, group_column_)));
  }
  return model_.Fit(x.SelectCols(FixedColumns(x.cols())), y, groups);
}

Result<double> LmmRegressor::Predict(const Vector& row) const {
  if (!model_.fitted()) return Status::FailedPrecondition("model not fitted");
  if (row.size() != num_features_) {
    return Status::InvalidArgument("feature arity mismatch");
  }
  Vector fixed;
  fixed.reserve(row.size() - 1);
  for (size_t c = 0; c < row.size(); ++c) {
    if (c != group_column_) fixed.push_back(row[c]);
  }
  const int group = static_cast<int>(std::llround(row[group_column_]));
  return model_.PredictForGroup(fixed, group);
}

}  // namespace wpred
