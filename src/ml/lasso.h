#ifndef WPRED_ML_LASSO_H_
#define WPRED_ML_LASSO_H_

#include "ml/model.h"

namespace wpred {

/// Elastic-net linear regression fit by cyclic coordinate descent on
/// standardised inputs (scikit-learn's objective):
///
///   (1/2n)·||y − Xw − b||² + α·λ₁·||w||₁ + (α/2)·(1−λ₁)·||w||²
///
/// with l1_ratio λ₁ = 1 giving the Lasso and λ₁ = 0 ridge. Coefficients are
/// reported in the standardised feature space (the paper's Figure 3 plots
/// them that way), and predictions map back to the original scale.
class ElasticNet : public Regressor {
 public:
  ElasticNet(double alpha, double l1_ratio, int max_iter = 1000,
             double tol = 1e-6)
      : alpha_(alpha), l1_ratio_(l1_ratio), max_iter_(max_iter), tol_(tol) {}

  Status Fit(const Matrix& x, const Vector& y) override;
  Result<double> Predict(const Vector& row) const override;
  bool fitted() const override { return fitted_; }

  /// |standardised coefficient| per feature; the embedded-selection signal.
  Result<Vector> FeatureImportances() const override;

  /// Coefficients in the standardised feature space.
  const Vector& coefficients() const { return coef_; }
  /// Intercept in the standardised space (mean of y).
  double intercept() const { return intercept_; }

  /// Warm start: when enabled, a repeat Fit() resumes coordinate descent
  /// from the previous solution instead of all-zeros — the streaming
  /// refresh path refits on a slid window where the old optimum is already
  /// near the new one, so descent converges in a few sweeps. Both starts
  /// descend to the same tolerance, so warm and cold solutions agree to
  /// within `tol` per coordinate (the documented warm-start tolerance; see
  /// DESIGN.md §13). A warm start is only used when the feature arity
  /// matches the previous fit; otherwise it falls back to the cold start.
  void set_warm_start(bool warm_start) { warm_start_ = warm_start; }
  bool warm_start() const { return warm_start_; }
  /// Full coordinate-descent sweeps the last Fit() took (== max_iter when
  /// the tolerance was never reached); 0 before any fit. The warm-start
  /// equivalence tests and bench_streaming_ingest read this to show the
  /// resume actually saves work.
  int last_sweeps() const { return last_sweeps_; }

 private:
  double alpha_;
  double l1_ratio_;
  int max_iter_;
  double tol_;
  bool warm_start_ = false;

  Vector coef_;
  double intercept_ = 0.0;
  Vector feature_mean_;
  Vector feature_scale_;
  bool fitted_ = false;
  int last_sweeps_ = 0;
};

/// Lasso = ElasticNet with l1_ratio 1.
class Lasso : public ElasticNet {
 public:
  explicit Lasso(double alpha, int max_iter = 1000, double tol = 1e-6)
      : ElasticNet(alpha, 1.0, max_iter, tol) {}
};

/// Smallest α that zeroes every coefficient (max |X̃ᵀỹ|/n on the
/// standardised problem); the natural top of a regularisation path.
double LassoAlphaMax(const Matrix& x, const Vector& y);

/// Lasso regularisation path (paper Figure 3): fits the model on a
/// descending α grid and returns the coefficient matrix (one row per α,
/// one column per feature, standardised space). The grid is logarithmic
/// from α_max down to α_max·alpha_min_ratio.
struct LassoPathResult {
  Vector alphas;
  Matrix coefficients;  // n_alphas x n_features
};
Result<LassoPathResult> LassoPath(const Matrix& x, const Vector& y,
                                  int num_alphas = 50,
                                  double alpha_min_ratio = 1e-3);

}  // namespace wpred

#endif  // WPRED_ML_LASSO_H_
