// Offline corpus workflow: in production, telemetry collection and
// prediction are separate jobs. This example simulates a reference corpus
// once, persists it as .wpred.csv files, then — as a "different process" —
// loads it back from disk and serves a prediction, without touching the
// simulator again.

#include <cstdio>
#include <filesystem>

#include "core/pipeline.h"
#include "core/workbench.h"
#include "telemetry/io.h"

using namespace wpred;

int main() {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "wpred_offline_corpus";
  std::filesystem::create_directories(dir);

  // --- Collection job: simulate once, persist to disk. ---
  {
    WorkbenchConfig config;
    config.workloads = {"TPC-C", "Twitter", "TPC-H"};
    config.skus = {MakeCpuSku(2), MakeCpuSku(8)};
    config.terminals = {8};
    config.runs = 3;
    config.sim.duration_s = 120.0;
    config.sim.sample_period_s = 0.5;
    std::printf("[collector] simulating + persisting reference corpus...\n");
    const auto corpus = GenerateCorpus(config);
    if (!corpus.ok()) return 1;
    if (const Status st = WriteCorpus(corpus.value(), dir.string()); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    size_t files = 0;
    uintmax_t bytes = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      ++files;
      bytes += entry.file_size();
    }
    std::printf("[collector] wrote %zu files, %.1f KiB total, to %s\n", files,
                bytes / 1024.0, dir.c_str());
  }

  // --- Prediction job: load from disk, fit, serve. ---
  {
    std::printf("[predictor] loading corpus from disk...\n");
    const auto corpus = ReadCorpus(dir.string());
    if (!corpus.ok()) {
      std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
      return 1;
    }
    std::printf("[predictor] %zu experiments loaded\n", corpus->size());

    Pipeline pipeline{PipelineConfig{}};
    if (!pipeline.Fit(corpus.value()).ok()) return 1;

    const auto observed = RunOne(
        "YCSB", MakeCpuSku(2), 8, 0,
        SimConfig{.duration_s = 120.0, .sample_period_s = 0.5}, 2024);
    if (!observed.ok()) return 1;
    const auto prediction = pipeline.PredictThroughput(observed.value(), 8);
    if (!prediction.ok()) return 1;
    std::printf("[predictor] customer workload ~ %s; predicted %.0f tps on "
                "8 CPUs (observed %.0f tps on 2 CPUs)\n",
                prediction->reference_workload.c_str(),
                prediction->throughput_tps,
                observed.value().perf.throughput_tps);
  }

  std::filesystem::remove_all(dir);
  return 0;
}
