// SKU advisor: the paper's Example 1 scenario. A customer runs a workload
// on a small SKU and wants to know the cheapest SKU that still meets a
// latency SLA after migration. The advisor predicts throughput on every
// candidate SKU via the pipeline and converts it to an expected latency
// using the closed-loop relationship (interactive response time law).

#include <cstdio>
#include <iostream>

#include "core/pipeline.h"
#include "core/workbench.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "sim/hardware.h"

using namespace wpred;

namespace {

// Closed-loop latency estimate from predicted throughput: with N terminals
// of think time Z, R = N/X - Z (interactive response time law).
double LatencyFromThroughputMs(double throughput_tps, int terminals,
                               double think_time_ms) {
  if (throughput_tps <= 0.0) return 1e9;
  return 1000.0 * terminals / throughput_tps - think_time_ms;
}

}  // namespace

int main() {
  constexpr double kSlaLatencyMs = 3.0;
  constexpr int kTerminals = 8;
  constexpr double kYcsbThinkMs = 2.0;

  WorkbenchConfig config;
  config.workloads = {"TPC-C", "Twitter", "TPC-H"};
  config.skus = DefaultSkuLadder();  // 2, 4, 8, 16 CPUs
  config.terminals = {kTerminals};
  config.runs = 3;
  config.sim.duration_s = 120.0;
  config.sim.sample_period_s = 0.5;

  std::printf("Building the reference corpus over the SKU ladder...\n");
  const auto corpus = GenerateCorpus(config);
  if (!corpus.ok()) return 1;

  Pipeline pipeline{PipelineConfig{}};
  if (!pipeline.Fit(corpus.value()).ok()) return 1;

  const auto observed =
      RunOne("YCSB", MakeCpuSku(2), kTerminals, 0, config.sim, 777);
  if (!observed.ok()) return 1;
  const double observed_latency = observed.value().perf.mean_latency_ms;
  std::printf("Customer workload on 2 CPUs: %.0f tps, %.2f ms mean latency "
              "(SLA: %.1f ms)\n\n",
              observed.value().perf.throughput_tps, observed_latency,
              kSlaLatencyMs);

  TablePrinter table({"SKU", "predicted tput (tps)", "predicted latency (ms)",
                      "meets SLA", "rel. cost"});
  std::string recommendation = "none";
  for (const Sku& sku : DefaultSkuLadder()) {
    const auto prediction =
        pipeline.PredictThroughput(observed.value(), sku.cpus);
    if (!prediction.ok()) continue;
    const double latency = LatencyFromThroughputMs(
        prediction->throughput_tps, kTerminals, kYcsbThinkMs);
    const bool ok = latency <= kSlaLatencyMs;
    if (ok && recommendation == "none") recommendation = sku.name;
    table.AddRow({sku.name, ToFixed(prediction->throughput_tps, 0),
                  ToFixed(latency, 2), ok ? "yes" : "no",
                  ToFixed(sku.cpus / 2.0, 1) + "x"});
  }
  table.Print(std::cout);
  std::printf("\nCheapest SLA-compliant SKU: %s\n", recommendation.c_str());
  return 0;
}
