// Quickstart: the wpred end-to-end pipeline in ~60 lines.
//
// 1. Simulate a reference corpus of known workloads across two SKUs.
// 2. Fit the pipeline (feature selection -> similarity -> scaling models).
// 3. Observe a "new" workload on the small SKU and predict its throughput
//    on the large SKU.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/example_quickstart

#include <cstdio>

#include "core/pipeline.h"
#include "core/workbench.h"
#include "sim/hardware.h"

using namespace wpred;

int main() {
  // --- 1. Reference corpus: TPC-C / Twitter / TPC-H on 2 and 8 CPUs. ---
  WorkbenchConfig config;
  config.workloads = {"TPC-C", "Twitter", "TPC-H"};
  config.skus = {MakeCpuSku(2), MakeCpuSku(8)};
  config.terminals = {8};
  config.runs = 3;
  config.sim.duration_s = 120.0;   // compressed from the paper's 1 h
  config.sim.sample_period_s = 0.5;

  std::printf("Simulating the reference corpus...\n");
  const auto corpus = GenerateCorpus(config);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus: %s\n", corpus.status().ToString().c_str());
    return 1;
  }

  // --- 2. Fit the pipeline (paper defaults: RFE LogReg top-7 features,
  //        Hist-FP representation, L2,1 distance, pairwise SVR models). ---
  Pipeline pipeline{PipelineConfig{}};
  if (const Status st = pipeline.Fit(corpus.value()); !st.ok()) {
    std::fprintf(stderr, "fit: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("Pipeline fitted. Selected features:");
  for (size_t f : pipeline.selected_features()) {
    std::printf(" %s", std::string(FeatureName(FeatureFromIndex(f))).c_str());
  }
  std::printf("\n");

  // --- 3. A workload the pipeline has never seen: YCSB on 2 CPUs. ---
  const auto observed =
      RunOne("YCSB", MakeCpuSku(2), 8, /*run=*/0, config.sim, /*seed=*/123);
  if (!observed.ok()) return 1;
  std::printf("Observed YCSB on 2 CPUs: %.0f tps\n",
              observed.value().perf.throughput_tps);

  const auto prediction = pipeline.PredictThroughput(observed.value(), 8);
  if (!prediction.ok()) {
    std::fprintf(stderr, "%s\n", prediction.status().ToString().c_str());
    return 1;
  }
  std::printf("Most similar reference workload: %s (distance %.3f)\n",
              prediction->reference_workload.c_str(),
              prediction->similarity_distance);
  std::printf("Predicted YCSB throughput on 8 CPUs: %.0f tps\n",
              prediction->throughput_tps);

  // Check against the simulator's ground truth.
  const auto truth =
      RunOne("YCSB", MakeCpuSku(8), 8, /*run=*/0, config.sim, /*seed=*/123);
  if (truth.ok()) {
    std::printf("Actual throughput on 8 CPUs:          %.0f tps\n",
                truth.value().perf.throughput_tps);
  }
  return 0;
}
