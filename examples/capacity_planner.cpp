// Capacity planner: combines the analytic MVA model, the discrete-event
// simulator, and the roofline-augmented predictor (paper Appendix B) to
// answer "how many CPUs does this workload need for a target throughput,
// and where does adding CPUs stop helping?".

#include <cstdio>
#include <iostream>

#include "common/table_printer.h"
#include "common/string_util.h"
#include "predict/ridgeline.h"
#include "predict/roofline.h"
#include "sim/engine.h"
#include "sim/hardware.h"
#include "sim/mva.h"
#include "sim/workload_spec.h"

using namespace wpred;

int main() {
  const WorkloadSpec workload = MakeTpcC();
  constexpr int kTerminals = 32;
  constexpr double kTargetTps = 1500.0;

  // Mean service demands of the mix, for the analytic model.
  double cpu_ms = 0.0, weight = 0.0;
  for (const TxnTypeSpec& t : workload.transactions) {
    cpu_ms += t.weight * t.cpu_ms;
    weight += t.weight;
  }
  cpu_ms /= weight;

  std::printf("Capacity planning for %s with %d terminals "
              "(target: %.0f tps)\n\n",
              workload.name.c_str(), kTerminals, kTargetTps);

  TablePrinter table({"#CPUs", "MVA throughput", "DES throughput",
                      "DES latency (ms)", "meets target"});
  Vector cpus_axis, des_tput;
  int recommended = -1;
  for (int cpus : {1, 2, 4, 8, 16}) {
    const auto mva = SolveClosedNetwork({{"cpu", cpu_ms / 1000.0, cpus}},
                                        kTerminals,
                                        workload.think_time_ms / 1000.0);
    RunRequest request;
    request.workload = workload;
    request.sku = MakeCpuSku(cpus);
    request.terminals = kTerminals;
    request.config.duration_s = 120.0;
    request.config.sample_period_s = 0.5;
    request.config.seed = 100 + cpus;
    const auto des = RunExperiment(request);
    if (!mva.ok() || !des.ok()) return 1;

    cpus_axis.push_back(cpus);
    des_tput.push_back(des.value().perf.throughput_tps);
    const bool ok = des.value().perf.throughput_tps >= kTargetTps;
    if (ok && recommended < 0) recommended = cpus;
    table.AddRow({std::to_string(cpus), ToFixed(mva.value().throughput, 1),
                  ToFixed(des.value().perf.throughput_tps, 1),
                  ToFixed(des.value().perf.mean_latency_ms, 2),
                  ok ? "yes" : "no"});
  }
  table.Print(std::cout);
  std::printf("\nNote: MVA models CPU queueing only; the DES adds lock\n"
              "contention and IO, so it saturates earlier.\n");

  // Roofline view: where does adding CPUs stop paying off?
  const double ceiling = 1000.0 * kTerminals / workload.think_time_ms;
  const auto roofline = RooflineModel::Fit(
      Vector(cpus_axis.begin(), cpus_axis.begin() + 3),
      Vector(des_tput.begin(), des_tput.begin() + 3), ceiling);
  if (roofline.ok()) {
    std::printf("\nRoofline: closed-loop ceiling %.0f tps (N/Z); the linear "
                "scaling trend meets it at %.1f CPUs — beyond that, more "
                "CPUs buy little.\n",
                ceiling, roofline->CrossoverCpus());
  }
  if (recommended > 0) {
    std::printf("Recommendation: %d CPUs for %.0f tps.\n", recommended,
                kTargetTps);
  } else {
    std::printf("No SKU on the ladder meets %.0f tps; consider reducing "
                "contention instead of adding CPUs.\n", kTargetTps);
  }

  // Ridgeline view: two-dimensional SKUs. The buffer-coverage ceiling of an
  // IO-hungry variant rises with memory, so the CPU crossover moves.
  WorkloadSpec hungry = workload;
  hungry.name = "TPC-C(io-hungry)";
  hungry.working_set_gb = 60.0;  // no SKU fully caches it
  std::vector<RidgelineModel::CeilingPoint> ridge;
  for (double mem_gb : {16.0, 64.0, 256.0}) {
    Sku sku = MakeCpuSku(16);
    sku.memory_gb = mem_gb;
    RunRequest request;
    request.workload = hungry;
    request.sku = sku;
    request.terminals = kTerminals;
    request.config.duration_s = 60.0;
    request.config.sample_period_s = 0.5;
    const auto run = RunExperiment(request);
    if (run.ok()) {
      ridge.push_back({mem_gb, run.value().perf.throughput_tps});
    }
  }
  if (ridge.size() == 3) {
    const auto ridgeline = RidgelineModel::Fit(
        Vector(cpus_axis.begin(), cpus_axis.begin() + 3),
        Vector(des_tput.begin(), des_tput.begin() + 3), ridge);
    if (ridgeline.ok()) {
      std::printf("\nRidgeline (2-D SKUs, IO-hungry variant): CPU crossover "
                  "at %.1f CPUs with 16 GB vs %.1f CPUs with 256 GB — more "
                  "memory keeps extra CPUs useful for longer.\n",
                  ridgeline->CrossoverCpus(16.0),
                  ridgeline->CrossoverCpus(256.0));
    }
  }
  return 0;
}
