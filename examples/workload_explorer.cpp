// Workload explorer: inspect what the telemetry of each standardized
// benchmark looks like on the simulator, which features a selection
// strategy considers discriminative, and how similar the workloads are to
// each other — the first two stages of the paper's pipeline, interactively.

#include <cstdio>
#include <iostream>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/workbench.h"
#include "featsel/ranking.h"
#include "featsel/registry.h"
#include "linalg/stats.h"
#include "sim/hardware.h"
#include "similarity/eval.h"
#include "similarity/measures.h"
#include "telemetry/subsample.h"

using namespace wpred;

int main() {
  WorkbenchConfig config;
  config.workloads = {"TPC-C", "TPC-H", "TPC-DS", "Twitter", "YCSB"};
  config.skus = {MakeCpuSku(8)};
  config.terminals = {8};
  config.runs = 2;
  config.sim.duration_s = 120.0;
  config.sim.sample_period_s = 0.5;

  std::printf("Simulating the five standardized benchmarks on 8 CPUs...\n\n");
  const auto corpus_or = GenerateCorpus(config);
  if (!corpus_or.ok()) return 1;
  const ExperimentCorpus& corpus = corpus_or.value();

  // --- Telemetry summary (cf. paper Table 1). ---
  TablePrinter telemetry({"workload", "type", "tput (tps)", "latency (ms)",
                          "CPU util %", "IOPS", "lock req/s", "read frac"});
  for (const Experiment& e : corpus.experiments()) {
    if (e.run_id != 0) continue;
    const Matrix& r = e.resource.values;
    telemetry.AddRow(
        {e.workload, std::string(WorkloadTypeName(e.type)),
         ToFixed(e.perf.throughput_tps, 1), ToFixed(e.perf.mean_latency_ms, 2),
         ToFixed(Mean(r.Col(IndexOf(FeatureId::kCpuUtilization))), 1),
         ToFixed(Mean(r.Col(IndexOf(FeatureId::kIopsTotal))), 0),
         ToFixed(Mean(r.Col(IndexOf(FeatureId::kLockReqAbs))) /
                     e.resource.sample_period_s,
                 0),
         ToFixed(Mean(r.Col(IndexOf(FeatureId::kReadWriteRatio))), 3)});
  }
  std::printf("Telemetry summary (run 0 of each workload):\n");
  telemetry.Print(std::cout);

  // --- Feature importance under three strategies. ---
  const auto agg_or = BuildAggregateObservations(corpus, 10);
  if (!agg_or.ok()) return 1;
  const AggregateObservations& agg = agg_or.value();
  std::printf("\nTop-5 features per selection strategy (workload label "
              "target):\n");
  TablePrinter features({"strategy", "top-5 features"});
  for (const char* name :
       {"fANOVA", "MIGain", "RandomForest", "RFE LogReg"}) {
    auto selector = CreateSelector(name).value();
    const auto scores = selector->ScoreFeatures(agg.x, agg.labels);
    if (!scores.ok()) continue;
    std::vector<std::string> names;
    for (size_t f : ScoresToRanking(scores.value()).TopK(5)) {
      names.emplace_back(FeatureName(FeatureFromIndex(f)));
    }
    features.AddRow({name, Join(names, ", ")});
  }
  features.Print(std::cout);

  // --- Workload-to-workload distance matrix (Hist-FP + L2,1, top-7). ---
  auto selector = CreateSelector("RFE LogReg").value();
  const auto scores = selector->ScoreFeatures(agg.x, agg.labels);
  if (!scores.ok()) return 1;
  const std::vector<size_t> top7 = ScoresToRanking(scores.value()).TopK(7);

  const auto subs_or = SubsampleCorpus(corpus, 10);
  if (!subs_or.ok()) return 1;
  const auto distances = PairwiseDistances(
      subs_or.value(), Representation::kHistFp, "L2,1-Norm", top7);
  if (!distances.ok()) return 1;

  const std::vector<std::string> workloads = corpus.WorkloadNames();
  std::printf("\nMean inter-workload distances (Hist-FP + L2,1, top-7, "
              "normalised):\n");
  std::vector<std::string> header = {"workload"};
  for (const auto& w : workloads) header.push_back(w);
  TablePrinter matrix(header);
  // Mean distance between sub-experiments of each workload pair.
  const ExperimentCorpus& subs = subs_or.value();
  double max_mean = 0.0;
  std::vector<std::vector<double>> means(
      workloads.size(), std::vector<double>(workloads.size(), 0.0));
  for (size_t a = 0; a < workloads.size(); ++a) {
    for (size_t b = 0; b < workloads.size(); ++b) {
      double total = 0.0;
      size_t count = 0;
      for (size_t i = 0; i < subs.size(); ++i) {
        if (subs[i].workload != workloads[a]) continue;
        for (size_t j = 0; j < subs.size(); ++j) {
          if (i == j || subs[j].workload != workloads[b]) continue;
          total += distances.value()(i, j);
          ++count;
        }
      }
      means[a][b] = count > 0 ? total / count : 0.0;
      max_mean = std::max(max_mean, means[a][b]);
    }
  }
  for (size_t a = 0; a < workloads.size(); ++a) {
    std::vector<std::string> row = {workloads[a]};
    for (size_t b = 0; b < workloads.size(); ++b) {
      row.push_back(ToFixed(means[a][b] / max_mean, 3));
    }
    matrix.AddRow(row);
  }
  matrix.Print(std::cout);
  std::printf("\nSmall diagonal + small TPC-H/TPC-DS and TPC-C/YCSB cells =\n"
              "the class structure the paper's similarity stage exploits.\n");
  return 0;
}
